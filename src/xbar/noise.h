/**
 * @file
 * Analog non-ideality models.
 *
 * Hu et al. [26] show crossbar reads are robust to thermal / shot /
 * random-telegraph noise; Section VIII-A argues a marginal increase
 * in signal noise is tolerable for CNNs. Three device-level effects
 * are modelled, all deterministic per seed:
 *
 *  - *read noise*: additive Gaussian current noise per bitline
 *    sample (sigmaLsb, in units of one cell-conductance LSB);
 *  - *write variation*: each program pulse lands within a Gaussian
 *    error of the target level (writeSigmaLevels); program-verify
 *    re-pulses until the readback matches, bounded by
 *    maxProgramPulses;
 *  - *stuck cells*: a fraction of cells whose conductance cannot be
 *    changed (fabrication defects). The frozen level follows the
 *    RxNN fault taxonomy: stuck-at-ON (a low-resistance short, the
 *    cell reads 2^w - 1), stuck-at-OFF (an open device, the cell
 *    reads 0), or frozen at a random level;
 *  - *conductance drift*: programmed cells decay toward the OFF
 *    state over time (retention loss — the effect Xiao et al. find
 *    dominating real crossbar accuracy). Drift is a pure function of
 *    (seed, cell, age), where age is the operation count since the
 *    last refresh: a periodic refresh policy (refreshIntervalOps)
 *    re-runs the program-verify loop every R operations, resetting
 *    every cell's age, with the pulses charged to the WriteModel.
 *    Sizing rule: driftLevelsPerOp * (refreshIntervalOps - 1) < 1
 *    guarantees no read ever sees a drifted level.
 *
 * All default to off, making the data path exact.
 */

#ifndef ISAAC_XBAR_NOISE_H
#define ISAAC_XBAR_NOISE_H

#include <cstdint>

namespace isaac::xbar {

/** What level a fabrication-defect cell is frozen at. */
enum class StuckMode
{
    RandomLevel, ///< Frozen at a uniformly random level.
    On,          ///< Low-resistance short: frozen at 2^w - 1.
    Off,         ///< Open device: frozen at 0.
};

/** Analog non-ideality specification. */
struct NoiseSpec
{
    /** Read-noise standard deviation in bitline LSBs; 0 disables. */
    double sigmaLsb = 0.0;

    /** Per-pulse programming error sigma in levels; 0 disables. */
    double writeSigmaLevels = 0.0;

    /** Fraction of cells stuck (fabrication defects); 0 disables. */
    double stuckAtFraction = 0.0;

    /** Frozen-level model for stuck cells. */
    StuckMode stuckMode = StuckMode::RandomLevel;

    /**
     * Conductance drift velocity ceiling in levels per operation; a
     * cell's realized velocity is this times a per-(cell, epoch)
     * susceptibility in [0, 1). 0 disables drift.
     */
    double driftLevelsPerOp = 0.0;

    /**
     * Refresh the arrays (program-verify every cell back to its
     * target) every this many operations; 0 = never refresh, so age
     * grows without bound and drift eventually corrupts reads. Only
     * meaningful with drift enabled.
     */
    std::uint64_t refreshIntervalOps = 0;

    /**
     * Program-verify retry bound: pulses issued per cell before the
     * write driver gives up and reports the cell faulty. With write
     * noise each pulse redraws its error; a stuck cell burns the
     * whole budget. Must be >= 1.
     */
    int maxProgramPulses = 8;

    /** Seed for the deterministic noise streams. */
    std::uint64_t seed = 0x15AAC;

    bool readNoiseEnabled() const { return sigmaLsb > 0.0; }
    bool writeNoiseEnabled() const { return writeSigmaLevels > 0.0; }
    bool faultsEnabled() const { return stuckAtFraction > 0.0; }
    bool driftEnabled() const { return driftLevelsPerOp > 0.0; }

    bool
    anyEnabled() const
    {
        return readNoiseEnabled() || writeNoiseEnabled() ||
            faultsEnabled() || driftEnabled();
    }
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_NOISE_H
