/**
 * @file
 * Analog non-ideality models.
 *
 * Hu et al. [26] show crossbar reads are robust to thermal / shot /
 * random-telegraph noise; Section VIII-A argues a marginal increase
 * in signal noise is tolerable for CNNs. Three device-level effects
 * are modelled, all deterministic per seed:
 *
 *  - *read noise*: additive Gaussian current noise per bitline
 *    sample (sigmaLsb, in units of one cell-conductance LSB);
 *  - *write variation*: each program pulse lands within a Gaussian
 *    error of the target level (writeSigmaLevels); program-verify
 *    re-pulses until the readback matches, bounded by
 *    maxProgramPulses;
 *  - *stuck cells*: a fraction of cells whose conductance cannot be
 *    changed (fabrication defects). The frozen level follows the
 *    RxNN fault taxonomy: stuck-at-ON (a low-resistance short, the
 *    cell reads 2^w - 1), stuck-at-OFF (an open device, the cell
 *    reads 0), or frozen at a random level.
 *
 * All default to off, making the data path exact.
 */

#ifndef ISAAC_XBAR_NOISE_H
#define ISAAC_XBAR_NOISE_H

#include <cstdint>

namespace isaac::xbar {

/** What level a fabrication-defect cell is frozen at. */
enum class StuckMode
{
    RandomLevel, ///< Frozen at a uniformly random level.
    On,          ///< Low-resistance short: frozen at 2^w - 1.
    Off,         ///< Open device: frozen at 0.
};

/** Analog non-ideality specification. */
struct NoiseSpec
{
    /** Read-noise standard deviation in bitline LSBs; 0 disables. */
    double sigmaLsb = 0.0;

    /** Per-pulse programming error sigma in levels; 0 disables. */
    double writeSigmaLevels = 0.0;

    /** Fraction of cells stuck (fabrication defects); 0 disables. */
    double stuckAtFraction = 0.0;

    /** Frozen-level model for stuck cells. */
    StuckMode stuckMode = StuckMode::RandomLevel;

    /**
     * Program-verify retry bound: pulses issued per cell before the
     * write driver gives up and reports the cell faulty. With write
     * noise each pulse redraws its error; a stuck cell burns the
     * whole budget. Must be >= 1.
     */
    int maxProgramPulses = 8;

    /** Seed for the deterministic noise streams. */
    std::uint64_t seed = 0x15AAC;

    bool readNoiseEnabled() const { return sigmaLsb > 0.0; }
    bool writeNoiseEnabled() const { return writeSigmaLevels > 0.0; }
    bool faultsEnabled() const { return stuckAtFraction > 0.0; }

    bool
    anyEnabled() const
    {
        return readNoiseEnabled() || writeNoiseEnabled() ||
            faultsEnabled();
    }
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_NOISE_H
