/**
 * @file
 * Analog non-ideality models.
 *
 * Hu et al. [26] show crossbar reads are robust to thermal / shot /
 * random-telegraph noise; Section VIII-A argues a marginal increase
 * in signal noise is tolerable for CNNs. Three device-level effects
 * are modelled, all deterministic per seed:
 *
 *  - *read noise*: additive Gaussian current noise per bitline
 *    sample (sigmaLsb, in units of one cell-conductance LSB);
 *  - *write variation*: program-verify converges to within a
 *    Gaussian error of the target level (writeSigmaLevels);
 *  - *stuck cells*: a fraction of cells whose conductance cannot be
 *    changed (fabrication defects), frozen at a random level.
 *
 * All default to off, making the data path exact.
 */

#ifndef ISAAC_XBAR_NOISE_H
#define ISAAC_XBAR_NOISE_H

#include <cstdint>

namespace isaac::xbar {

/** Analog non-ideality specification. */
struct NoiseSpec
{
    /** Read-noise standard deviation in bitline LSBs; 0 disables. */
    double sigmaLsb = 0.0;

    /** Programming error sigma in cell-level units; 0 disables. */
    double writeSigmaLevels = 0.0;

    /** Fraction of cells stuck at a random level; 0 disables. */
    double stuckAtFraction = 0.0;

    /** Seed for the deterministic noise streams. */
    std::uint64_t seed = 0x15AAC;

    bool readNoiseEnabled() const { return sigmaLsb > 0.0; }
    bool writeNoiseEnabled() const { return writeSigmaLevels > 0.0; }
    bool faultsEnabled() const { return stuckAtFraction > 0.0; }

    bool
    anyEnabled() const
    {
        return readNoiseEnabled() || writeNoiseEnabled() ||
            faultsEnabled();
    }
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_NOISE_H
