/**
 * @file
 * The bit-serial in-situ dot-product engine (Sections V and VI).
 *
 * A BitSerialEngine owns the physical crossbars that store one
 * logical weight matrix (dot-product length x output count) and
 * executes the paper's full arithmetic pipeline:
 *
 *  - inputs are presented as 16/v sequential v-bit digits (the 1-bit
 *    DAC of the default design needs no DAC circuit at all);
 *  - each 16-bit weight occupies 16/w adjacent w-bit cells, stored
 *    biased by 2^15 and possibly column-flipped;
 *  - every crossbar read latches all bitlines in S&H circuits and
 *    streams them through the ADC;
 *  - digital shift-and-add merges slices, phases, the unit-column
 *    corrections, and the sign of input bit 15.
 *
 * The result is the *exact* signed 64-bit dot product of the signed
 * 16-bit inputs and weights (tests assert bit-equality against a
 * direct evaluation) unless analog noise is enabled.
 *
 * Logical matrices larger than one physical array are tiled across
 * row segments (partial sums added digitally) and column segments.
 *
 * Thread-safety contract (see docs/threading.md): dotProduct() is
 * const and safe to call concurrently from any number of threads on
 * one engine. Each call accumulates its activity into per-worker
 * tallies that are merged once at the end, so results AND final
 * counter values are bit-identical to a serial run regardless of the
 * thread count. reprogram() is a structural mutation and must not
 * overlap any other call.
 */

#ifndef ISAAC_XBAR_ENGINE_H
#define ISAAC_XBAR_ENGINE_H

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/epoch_log.h"
#include "common/types.h"
#include "resilience/fault_map.h"
#include "resilience/health.h"
#include "resilience/summary.h"
#include "xbar/adc.h"
#include "xbar/adc_policy.h"
#include "xbar/crossbar.h"
#include "xbar/noise.h"

namespace isaac::xbar {

/** How signed inputs are fed to the rows. */
enum class InputMode
{
    /**
     * Two's-complement bit-serial (the paper's scheme, Sec. V): the
     * final bit's partial result is shift-and-*subtracted*. Requires
     * a 1-bit DAC (v = 1).
     */
    TwosComplement,

    /**
     * Biased inputs (x + 2^15 fed as unsigned digits) with a digital
     * correction using the unit column and per-column weight sums.
     * Works for any DAC resolution v; used in the multi-bit-DAC
     * ablation.
     */
    Biased,
};

/** Static configuration of one engine. */
struct EngineConfig
{
    int rows = 128;     ///< Physical wordlines per array.
    int cols = 128;     ///< Physical data bitlines (unit col extra).
    int cellBits = 2;   ///< w: bits per cell.
    int dacBits = 1;    ///< v: input digit width.
    bool flipEncoding = true; ///< Column-flip scheme of Sec. V.
    InputMode inputMode = InputMode::TwosComplement;
    NoiseSpec noise;    ///< Analog non-ideality (off by default).

    /**
     * Spare physical columns per array for fault-aware remapping
     * (in addition to the data columns and the unit column). A
     * logical weight-slice column whose program-verify readback
     * mismatches is moved onto a spare; when spares run out the
     * least-bad column is kept and its mismatches are reported as
     * uncorrectable (see resilience/remap.h).
     */
    int spareCols = 0;

    /**
     * Worker threads for dotProduct() and programming: 0 = one per
     * hardware thread, 1 = serial (reproduces the historical
     * behavior cycle-for-cycle). Results are bit-identical at any
     * setting.
     */
    int threads = 0;

    /**
     * Program one extra physical column per array holding, in each
     * used row, the modular sum (mod 2^w) of that row's mapped data
     * cells, and verify every bit-serial read against it: with exact
     * analog values the quantized data-column total and the checksum
     * reading agree mod 2^w, so any single-column excursion (read
     * noise, drift, an injected cell fault) is flagged. A flagged
     * tile-phase is re-read up to maxReadRetries times with a fresh
     * noise draw before the engine accepts the value as-is. The
     * checksum targets are derived from the *stored* (post
     * program-verify, post remap) levels, so permanent defects the
     * resilience layer already accounted for never raise alarms;
     * a tile whose checksum column itself fails verification runs
     * with the check disabled (counted in TransientStats).
     */
    bool abftChecksum = false;

    /** Bounded re-reads per flagged tile-phase (0 = detect only). */
    int maxReadRetries = 3;

    /** First re-read backoff in cycles; doubles per attempt. */
    int retryBackoffCycles = 2;

    /**
     * Packed bit-plane fast path: when the analog model is clean (no
     * read noise, no drift, no injected faults) every bitline sum is
     * computed as popcounts over 64-bit bit-planes of the stored
     * levels instead of the scalar O(rows x cols) loop, and the ABFT
     * checksum is verified digitally from the same packed sums.
     * Results, EngineStats, per-tile AdcTally, and TransientStats
     * are bit-identical either way (tests assert it); false forces
     * the legacy scalar path. Noisy / drifting configs and engines
     * with injectCellFault() activity always take the scalar path
     * regardless of this knob. See docs/performance.md.
     */
    bool fastPath = true;

    /**
     * Per-tile LRU memo capacity for the fast path: a (phase, row
     * segment) whose digit vector was already evaluated against a
     * tile replays the cached quantized columns, unit reading, and
     * counter deltas instead of re-reading — conv windows and
     * sign-extended high phases repeat digit vectors heavily. 0
     * disables memoization. Replayed deltas equal computed deltas,
     * so results and all counters stay exact at any hit pattern.
     */
    int memoEntries = 64;

    /**
     * Batched window execution: when the fast path is active,
     * CompiledModel drives every window of a shared-kernel layer
     * through dotProductBatch(), which stages the whole layer's digit
     * planes into one plane-major bit-matrix and evaluates all
     * windows per tile-phase in a single popcount GEMM
     * (xbar/batch_kernel.h). Results, EngineStats, per-tile AdcTally,
     * and TransientStats are bit-identical to per-window dotProduct()
     * calls (tests assert it); only the diagnostic memo hit/miss
     * split differs (the batched path does not consult the memo).
     * false restores the per-window path.
     */
    bool batchWindows = true;

    /**
     * The ADC resolution/energy policy (xbar/adc_policy.h): one
     * surface replacing the old adcBitsOverride special-casing. The
     * default fixed policy reproduces the derived Eq. (1)/(2)
     * converter; AdcPolicy::fixed(b) forces every conversion to b
     * bits — below the requirement it models a cheaper converter
     * whose clips are counted in adcClips / AdcTally, the
     * accuracy-vs-energy axis the campaign lab sweeps — and
     * AdcPolicy::adaptive() truncates each conversion to the
     * worst-case bound the unit column certifies for that cycle
     * (bit-exact when the cap covers the requirement; deterministic,
     * seed-stable quantization deltas otherwise). The energy catalog
     * prices the converter from the same policy, so every trade
     * shows up in both the accuracy and energy columns.
     */
    AdcPolicy adcPolicy;

    /** Digits per weight = 16 / w. */
    int slicesPerWeight() const { return kDataBits / cellBits; }

    /** Input phases per 16-bit operation = 16 / v. */
    int phases() const { return kDataBits / dacBits; }

    /** Outputs that fit in one physical array's data columns. */
    int outputsPerArray() const { return cols / slicesPerWeight(); }

    /**
     * Converter sizing in effect: the derived requirement, or the
     * policy's explicit override/cap when set (the adaptive policy's
     * cap is the widest conversion its converter can run).
     */
    int adcBits() const;

    /** Sanity-check field combinations; fatal() on bad configs. */
    void validate() const;
};

/**
 * Outcome of one online repairTile() pass: what the quarantine march
 * censused and what the fresh placement could (and could not) cover.
 * Every field is derived from array state alone, so a scripted fault
 * timeline reproduces the same report regardless of how many reads
 * raced the detection — the serving watchdog's canonical recovery
 * log leans on that.
 */
struct TileRepairReport
{
    int faultsFound = 0;        ///< March-test census of stuck cells.
    int remappedColumns = 0;    ///< Logical columns moved to spares.
    int uncorrectableCells = 0; ///< Mismatches spares could not cover.
    bool abftOk = true;         ///< Checksum column healthy (or off).

    void
    merge(const TileRepairReport &o)
    {
        faultsFound += o.faultsFound;
        remappedColumns += o.remappedColumns;
        uncorrectableCells += o.uncorrectableCells;
        abftOk = abftOk && o.abftOk;
    }
};

/** Activity counters for energy/perf accounting. */
struct EngineStats
{
    std::uint64_t ops = 0;           ///< dotProduct() calls.
    std::uint64_t crossbarReads = 0; ///< Physical array read cycles.
    std::uint64_t adcSamples = 0;    ///< ADC conversions.
    std::uint64_t adcClips = 0;      ///< Conversions that clipped.
    std::uint64_t shiftAdds = 0;     ///< Digital merge operations.
    std::uint64_t dacActivations = 0; ///< Row-digit presentations.
    /** SAR comparator cycles across the conversions: adcSamples x
     *  resolution for a fixed policy, the sum of the per-cycle
     *  resolutions for an adaptive one (the Newton saving the
     *  energy model prices). */
    std::uint64_t adcBitCycles = 0;

    /** Fold another tally in (all counters are exact sums). */
    void
    merge(const EngineStats &o)
    {
        ops += o.ops;
        crossbarReads += o.crossbarReads;
        adcSamples += o.adcSamples;
        adcClips += o.adcClips;
        shiftAdds += o.shiftAdds;
        dacActivations += o.dacActivations;
        adcBitCycles += o.adcBitCycles;
    }

    bool operator==(const EngineStats &) const = default;
};

/** The in-situ multiply-accumulate engine for one weight matrix. */
class BitSerialEngine
{
  public:
    /**
     * Program a logical weight matrix.
     * @param cfg         engine configuration
     * @param weights     matrix in output-major layout:
     *                    weights[k * numInputs + r]
     * @param numInputs   dot-product length (rows of the matrix)
     * @param numOutputs  number of output neurons (columns)
     */
    BitSerialEngine(const EngineConfig &cfg,
                    std::span<const Word> weights,
                    int numInputs, int numOutputs);

    /**
     * Execute one full bit-serial dot-product operation: 16/v
     * crossbar read phases against all arrays, ADC conversion, and
     * digital merging. Returns the exact signed dot products, one
     * per output. Safe to call concurrently from multiple threads.
     */
    std::vector<Acc> dotProduct(std::span<const Word> inputs) const;

    /**
     * Execute `count` dot products in one batched call: `inputs`
     * holds count concatenated input vectors (window-major,
     * inputs[i * numInputs() + r]) and the result holds the count
     * concatenated outputs (out[i * numOutputs() + k]). On the fast
     * path the digit planes of every window are staged once per
     * (phase, row segment) into a plane-major bit-matrix and each
     * tile is evaluated for all windows in one popcount GEMM — the
     * per-call staging, dispatch, and memo-probe overhead of
     * dotProduct() is paid once per layer instead of once per
     * window. Results and every counter (EngineStats, per-tile
     * AdcTally, TransientStats, array read cycles) are bit-identical
     * to `count` sequential dotProduct() calls at any thread count
     * and any dispatch tier; only memoHits()/memoMisses() differ
     * (diagnostic-only; this path bypasses the memo). Noisy,
     * drifting, or fault-injected engines fall back to per-window
     * dotProduct() calls internally, so the batch entry point is
     * always safe to use. Thread-safe like dotProduct().
     */
    std::vector<Acc> dotProductBatch(std::span<const Word> inputs,
                                     int count) const;

    /**
     * Replace the weight matrix in place (same dimensions).
     * Program-verify only rewrites cells whose target level changed.
     * Must not overlap concurrent dotProduct() calls.
     * @return number of cell writes performed.
     */
    std::int64_t reprogram(std::span<const Word> weights);

    int numInputs() const { return _numInputs; }
    int numOutputs() const { return _numOutputs; }

    /** Physical arrays used (row segments x column segments). */
    int physicalArrays() const;
    int rowSegments() const { return _rowSegments; }
    int colSegments() const { return _colSegments; }

    const EngineConfig &config() const { return cfg; }

    /** Snapshot of the activity counters (consistent under races). */
    EngineStats stats() const;

    /**
     * Zero every counter the engine owns: the EngineStats tallies,
     * the ADC sample/clip counts, each tile's crossbar read cycles,
     * and the digit-vector memo state (cached entries *and* the
     * hit/miss diagnostics), so post-reset accounting starts from
     * zero and a replayed campaign reports the same diagnostics a
     * fresh engine would.
     */
    void resetStats();

    /**
     * Advance the drift clock by `ops` operations without executing
     * anything: subsequent reads see conductances aged as if that
     * many dot products had already run. Campaign scenarios use this
     * to place a model at a chosen point on the drift curve before
     * measuring; resetStats() rewinds the clock to zero. Must not
     * overlap concurrent dotProduct() calls.
     */
    void advanceOpClock(std::uint64_t ops);

    /** Total ADC clip events (must stay 0 with noise disabled). */
    std::uint64_t adcClips() const;

    /** Total crossbar read cycles across the engine's tiles. */
    std::uint64_t readCycles() const;

    /** Fraction of cells in the allocated arrays holding weights. */
    double cellUtilization() const;

    /** Aggregate fault census across the engine's arrays. */
    resilience::ArrayFaultReport faultReport() const;

    /** Fault census of one tile's array. */
    resilience::ArrayFaultReport tileFaultReport(int rs,
                                                 int cs) const;

    /**
     * Fault map the latest programming pass detected on one tile's
     * array (physical coordinates, used rows only). Deterministic
     * per (seed, geometry) at any thread count.
     */
    const resilience::FaultMap &faultMap(int rs, int cs) const;

    /**
     * Per-tile ADC activity (samples and clips), consistent with
     * stats() under concurrent dotProduct() calls.
     */
    AdcTally tileAdcTally(int rs, int cs) const;

    /** Write pulses issued by all programming passes (lifetime). */
    std::uint64_t programPulses() const;

    /**
     * Transient-error counters: ABFT checks/mismatches/retries and
     * drift-refresh accounting. abftDisabledTiles reflects the
     * current structural state (tiles whose checksum column failed
     * verification) and therefore survives resetStats(), like the
     * fault census.
     */
    resilience::TransientStats transientStats() const;

    /**
     * Targeted fault injection on one tile's array (forceStuck
     * semantics: level = -1 heals). Corrupting a mapped data cell
     * after programming makes every subsequent ABFT check on that
     * tile flag a persistent mismatch — the campaign tests use this
     * to exercise the retry-exhaustion path.
     */
    void injectCellFault(int rs, int cs, int row, int col, int level);

    /**
     * Online self-repair of one tile: run the destructive march test
     * (resilience::extractFaultMap) to census the tile's *current*
     * permanent faults — the program-time map goes stale the moment
     * a cell fails in the field — then rebuild the tile from its
     * retained intended levels with a fresh fault-aware placement
     * (spare remap, least-bad fallback), reprogram the ABFT checksum
     * column, and re-arm the packed fast path if no other tile still
     * carries an un-repaired injected fault. A report with
     * uncorrectableCells > 0 means the spares are exhausted and the
     * caller should degrade around the tile instead of trusting it.
     *
     * Structural mutation like reprogram(): must not overlap any
     * concurrent dotProduct() call (the serving watchdog holds its
     * exclusive repair lock across this). fatal() when write noise
     * is enabled — the march would misreport transient write errors
     * as permanent faults.
     */
    TileRepairReport repairTile(int rs, int cs);

    /** Whether tile (rs, cs) runs with an active checksum column. */
    bool abftActive(int rs, int cs) const;

    /**
     * True when dotProduct() takes the packed bit-plane path: the
     * fastPath knob is on, the noise spec has no read noise or
     * drift, and no fault was injected after programming. Scalar
     * and packed execution are bit-identical; this only reports
     * which one runs.
     */
    bool fastPathActive() const;

    /**
     * Digit-vector memo replay hits / misses (all tiles, since
     * construction or the last resetStats()). Diagnostic only:
     * concurrent dotProduct() calls may race to populate an entry,
     * so the split is interleaving-dependent even though results and
     * EngineStats never are — and dotProductBatch() bypasses the
     * memo entirely.
     */
    std::uint64_t memoHits() const;
    std::uint64_t memoMisses() const;

  private:
    /**
     * Cache-line-aligned: tiles sit adjacent in the `tiles` vector and
     * concurrent workers read/evaluate different tiles; alignment
     * keeps one tile's mutable tail (fault census, taint flag) off its
     * neighbour's line.
     */
    struct alignas(kCacheLineBytes) ArrayTile
    {
        std::unique_ptr<CrossbarArray> array;
        std::vector<bool> flipped;  ///< Per logical data column.
        std::vector<Acc> sumBiased; ///< Per local output: sum of U.
        std::vector<int> intended;  ///< Target levels in *logical*
                                    ///< layout (differential
                                    ///< reprogramming baseline).
        std::vector<int> colMap;    ///< Logical -> physical column.
        resilience::FaultMap faults; ///< Latest pass's detections.
        int remappedColumns = 0;
        int uncorrectableCells = 0;
        int usedRows = 0;
        int localOutputs = 0;
        bool abftOk = false;         ///< Checksum column verified.
        bool checksumFlipped = false; ///< Flip rule on the checksum.
        /** injectCellFault() hit this tile and no repairTile() has
         *  run since; the engine-wide _injected flag is the OR of
         *  these, so repairing the last tainted tile re-arms the
         *  packed fast path. */
        bool tainted = false;
    };

    /**
     * Per-worker accumulator for one dotProduct() call.
     * Cache-line-aligned: parallelFor hands adjacent elements of a
     * `std::vector<Partial>` to different workers, so an unaligned
     * Partial would put two workers' hottest scratch on one line.
     */
    struct alignas(kCacheLineBytes) Partial
    {
        std::vector<Acc> result;  ///< Phase contributions per output.
        std::vector<Acc> rawSum;  ///< Biased-mode running totals.
        Acc unitTotal = 0;
        std::vector<int> digits;  ///< Scratch input-digit buffer.
        std::vector<Acc> colQ;    ///< Scratch quantized columns.
        std::vector<Acc> currents; ///< Scratch bitline readings.
        /** Scratch packed digit planes (dacBits x planeWords). */
        std::vector<std::uint64_t> digitPlanes;
        std::uint64_t planeHash = 0; ///< Hash of digitPlanes.
        /** Batched-path scratch: column-major block accumulator
         *  (numOutputs x n), per-window unit readings, and the
         *  per-output merged slice sums (runBatchBlock). */
        std::vector<Acc> batchAcc;
        std::vector<Acc> unitsBatch;
        std::vector<Acc> mergedBatch;
        EngineStats stats;
        resilience::TransientStats transient;
        std::vector<AdcTally> tileAdc; ///< ADC activity per tile.
    };

    /**
     * One memoized (digit vector -> tile reading): the quantized
     * data columns, the unit reading, and the exact counter deltas a
     * fresh evaluation would produce, so a replay is indistinguishable
     * from a recompute. Valid until the tile is reprogrammed or a
     * fault is injected (both clear the memo).
     */
    struct MemoEntry
    {
        std::uint64_t hash = 0;
        std::vector<std::uint64_t> key; ///< The packed digit planes.
        std::vector<Acc> colQ;
        Acc unit = 0;
        std::uint64_t reads = 0; ///< crossbarReads delta (attempts).
        AdcTally tally;          ///< ADC sample/clip delta.
        resilience::TransientStats transient; ///< ABFT delta.
        std::uint64_t lastUse = 0; ///< LRU clock.
    };

    /**
     * Per-tile memo; the mutex shards contention across tiles. The
     * hash index keeps lookups O(1) so large capacities (sized to a
     * conv layer's windows x phases working set) stay cheap; it is a
     * multimap because distinct keys may share an FNV hash (replay
     * verifies full key equality before trusting an entry).
     */
    struct alignas(kCacheLineBytes) TileMemo
    {
        std::mutex m;
        std::vector<MemoEntry> entries;
        std::unordered_multimap<std::uint64_t, std::size_t> index;
        std::uint64_t clock = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    ArrayTile &tile(int rs, int cs);
    const ArrayTile &tile(int rs, int cs) const;

    /**
     * Evaluate phase p against row segment rs into `part`. `opSeq`
     * is this dotProduct() call's operation number; together with p
     * it keys the read-noise draw so any execution order reproduces
     * the serial noise realization.
     */
    void runPhaseSegment(std::span<const Word> inputs, int p, int rs,
                         std::uint64_t opSeq, Partial &part) const;

    /**
     * Extract phase p's input digits for row segment rs directly
     * into part.digitPlanes (bypassing the scalar digit buffer) and
     * hash them for the memo key.
     */
    void packDigitPlanes(std::span<const Word> inputs, int p, int rs,
                         int used, Partial &part) const;

    /**
     * The bounded read-attempt loop every execution path shares:
     * `readFn(attempt)` supplies the bitline currents (and is
     * responsible for read-cycle accounting), everything else — ADC
     * quantization, unflipping, the ABFT check/retry/give-up ladder,
     * and every counter those touch — is common code, which is what
     * keeps the scalar, packed, and batched paths counter-identical.
     * Fills part.colQ and `unit`.
     */
    template <typename ReadFn>
    void evalTileAttempts(const ArrayTile &t, int dataCols,
                          bool checking, Partial &part,
                          AdcTally &tileTally, Acc &unit,
                          ReadFn readFn) const;

    /**
     * Fresh evaluation of one (phase, tile): evalTileAttempts with
     * the scalar or packed single-vector read primitive (`fast`
     * picks which).
     */
    void evalTilePhase(const ArrayTile &t, int dataCols,
                       bool checking, bool fast,
                       std::uint64_t baseSeq, std::uint64_t opSeq,
                       Partial &part, AdcTally &tileTally,
                       Acc &unit) const;

    /**
     * Digital merge of one (phase, tile) reading into a window's
     * accumulators: shift-and-add the slice columns of part.colQ,
     * remove the per-phase weight bias (two's complement) or
     * accumulate the raw biased sum, and count the shiftAdds. `acc`
     * is the window's full result (two's complement) or rawSum
     * (biased) vector; `unitTotal` accumulates the row-side unit
     * readings once per (phase, row segment). Shared verbatim by the
     * per-window and batched paths.
     */
    void mergeTilePhase(const ArrayTile &t, int cs, int p, Acc unit,
                        Partial &part, std::span<Acc> acc,
                        Acc &unitTotal) const;

    /**
     * Stage-in for the batched path: pack ALL 16 data bits of
     * windows [first, first + n) for row segment rs into one
     * plane-major bit-matrix dig[(b * words + w) * n + i] (b the bit
     * of the streamed 16-bit value: the raw two's-complement word,
     * or the biased value x + 2^15). One pass over the inputs per
     * (row segment, block) — each input word is read once and its
     * set bits scattered — instead of one branchy pass per phase.
     * Phase p's GEMM planes are then the contiguous slice starting
     * at bit p * dacBits: two's complement streams bit p with a
     * 1-bit DAC (EngineConfig::validate pins dacBits there) and
     * biased mode streams digit bits [p*v, (p+1)*v), so in both
     * modes plane j of phase p is plane p * dacBits + j here.
     */
    void packBitPlanesBatch(std::span<const Word> inputs, int first,
                            int n, int rs, int used,
                            std::vector<std::uint64_t> &dig) const;

    /**
     * Fast-path evaluation of one contiguous window block [first,
     * first + n): per (phase, row segment) one batched packing, per
     * tile one popcount GEMM, then the shared per-window digital
     * pass. Results land in the windows' slices of `out` (rawSum in
     * biased mode, corrected by the caller) and `unitTotals` (biased
     * mode only, else null); counters in `part`.
     */
    void runBatchBlock(std::span<const Word> inputs, int first, int n,
                       std::span<Acc> out, Acc *unitTotals,
                       Partial &part) const;

    /**
     * Replay a memoized reading of tile (rs, cs) for the digit
     * planes in `part`, merging the cached colQ/unit/counter deltas.
     * Returns false on a miss (the caller evaluates and inserts).
     */
    bool memoReplay(int rs, int cs, Partial &part, Acc &unit) const;

    /** Insert a fresh evaluation's deltas into the tile memo. */
    void memoInsert(int rs, int cs, const Partial &part, Acc unit,
                    const EngineStats &statsBefore,
                    const AdcTally &tallyBefore,
                    const resilience::TransientStats &trBefore) const;

    /** Drop every tile's memo (reprogram / fault injection). */
    void clearMemos() const;

    /** Program one tile; returns the cell writes performed. */
    std::int64_t programTile(ArrayTile &t,
                             std::span<const Word> weights,
                             int rowBase, int outBase);

    /**
     * (Re)program one tile's checksum column from the stored levels
     * the placement pass read back (usedRows x logicalCols, logical
     * column order); sets abftOk.
     */
    void programChecksum(ArrayTile &t, std::span<const int> stored);

    /** Physical column index of the ABFT checksum column. */
    int checksumCol() const { return cfg.cols + cfg.spareCols + 1; }

    EngineConfig cfg;
    int _numInputs;
    int _numOutputs;
    int _rowSegments;
    int _colSegments;
    std::vector<ArrayTile> tiles; ///< rowSegments x colSegments.
    Adc adc;
    /** dotProduct() call counter; keys the per-call noise stream. */
    mutable std::atomic<std::uint64_t> _opSeq{0};

    /**
     * Lock-free statistics substrate. Every dotProduct()/
     * dotProductBatch() call publishes its finished counter delta to
     * the calling thread's slot as one epoch; readers fold the slots.
     * Flat counter layout (see kLog* indices below):
     * [ EngineStats(7) | TransientStats(20) |
     *   per-tile {samples, clips, bitCycles} ].
     */
    static constexpr std::size_t kLogEngineFields = 7;
    static constexpr std::size_t kLogTransientFields = 20;
    /** Per-tile AdcTally fields in the flat layout. */
    static constexpr std::size_t kLogTileStride = 3;
    static constexpr std::size_t kLogTileBase =
        kLogEngineFields + kLogTransientFields;
    mutable EpochLog _log;
    /** Reader-side fold state: the vector-clock cursor plus the last
     *  folded totals, shared by stats()/tileAdcTally()/
     *  transientStats() under _foldMutex (readers only — writers
     *  never take it). */
    mutable std::mutex _foldMutex;
    mutable EpochLog::Cursor _foldCursor;
    mutable std::vector<std::uint64_t> _folded;

    /** Flatten one call's delta and publish it as one epoch; `total`
     *  carries the engine-wide clip and SAR-cycle sums (samples ride
     *  in `delta`). */
    void publishDelta(std::uint64_t ops, const EngineStats &delta,
                      const AdcTally &total,
                      const resilience::TransientStats &transientDelta,
                      std::span<const AdcTally> tileTally) const;
    /** Incremental fold into _folded; caller holds _foldMutex. */
    void foldLocked() const;

    /** Per-tile digit-vector memos (each owns its mutex). */
    mutable std::vector<std::unique_ptr<TileMemo>> memos;
    /** injectCellFault() happened: stored levels no longer match
     *  what programming left, so the packed path stands down. */
    mutable std::atomic<bool> _injected{false};

  public:
    // Layout probes for the false-sharing audit
    // (tests/common/test_layout.cc). The nested hot structures are
    // private; these constexprs export just their geometry so the
    // static_asserts live next to the other layout checks instead of
    // inside this header.
    static constexpr std::size_t kArrayTileAlign = alignof(ArrayTile);
    static constexpr std::size_t kPartialAlign = alignof(Partial);
    static constexpr std::size_t kTileMemoAlign = alignof(TileMemo);
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_ENGINE_H
