/**
 * @file
 * Crossbar programming (weight-loading) cost model.
 *
 * ISAAC loads trained weights into the memristor cells in a
 * programming step (Sec. III) and never reprograms during inference:
 * "a crossbar can't be efficiently re-programmed on the fly"
 * (Sec. I), which is what forces the layer-per-crossbar pipeline.
 * This model quantifies that claim: program-verify writes through
 * the 1T1R access devices (Sec. II-D, Zangeneh & Joshi [79]), one
 * wordline at a time per array, one array at a time per IMA's write
 * driver.
 *
 * Defaults follow typical TaOx/HfOx RRAM figures: 100 ns pulses,
 * ~4 program-verify iterations per 2-bit cell, ~10 pJ per pulse.
 */

#ifndef ISAAC_XBAR_WRITE_MODEL_H
#define ISAAC_XBAR_WRITE_MODEL_H

#include <cstdint>

#include "arch/config.h"

namespace isaac::xbar {

/** Programming-cost parameters and derived quantities. */
struct WriteModel
{
    double pulseNs = 100.0;    ///< One write pulse.
    double pulsesPerCell = 4.0; ///< Program-verify iterations.
    double pulseEnergyPj = 10.0;
    int rowsPerWrite = 1;       ///< Wordlines written in parallel.
    int arraysPerImaParallel = 1; ///< Write drivers per IMA.

    /** Seconds to program one full crossbar array. */
    double arraySeconds(const arch::IsaacConfig &cfg) const;

    /** Joules to program `cells` cells. */
    double cellsEnergyJ(std::int64_t cells) const;

    /**
     * Seconds of write-driver occupancy for a *measured* pulse count
     * (the program-verify loop's actual retries, e.g. from
     * BitSerialEngine::programPulses()), replacing the fixed
     * pulsesPerCell estimate. Pulses within one wordline write are
     * assumed serialized on the driver.
     */
    double pulsesSeconds(std::int64_t pulses) const;

    /** Joules for a measured pulse count. */
    double pulsesEnergyJ(std::int64_t pulses) const;

    /**
     * Observed program-verify iterations per cell from measured
     * counters; falls back to the static pulsesPerCell estimate when
     * nothing was written.
     */
    double measuredPulsesPerCell(std::int64_t pulses,
                                 std::int64_t cells) const;

    /**
     * Seconds to program `xbars` arrays on `chips` chips of `cfg`
     * (all IMAs program concurrently, arrays within an IMA
     * serialize on the write driver).
     */
    double programSeconds(const arch::IsaacConfig &cfg,
                          std::int64_t xbars, int chips) const;

    /** Joules to program `xbars` full arrays of `cfg`. */
    double programEnergyJ(const arch::IsaacConfig &cfg,
                          std::int64_t xbars) const;
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_WRITE_MODEL_H
