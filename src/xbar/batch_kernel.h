/**
 * @file
 * The plane-major batched popcount GEMM kernel behind the crossbar
 * fast path (docs/performance.md).
 *
 * The bit-plane representation turns an analog bitline read into
 * popcounts: column c's current for digit planes D is
 *
 *   sum_b 2^b * sum_j 2^j * sum_w popcount(D[j][w] & P[c][b][w])
 *
 * where P are the stored-level bit-planes. Evaluating one digit
 * vector at a time leaves most of the work in per-call staging, so
 * this kernel batches: the caller packs N digit vectors (a layer's
 * worth of windows) into one *plane-major* bit-matrix with the window
 * index innermost,
 *
 *   dig[(j * words + w) * n + i]   = word w of plane j of window i,
 *
 * and one call produces every window's reading of every column,
 *
 *   out[c * n + i] = reading of column c for window i.
 *
 * With the window index contiguous, the inner loop is a broadcast
 * cell word ANDed against consecutive digit words — exactly the shape
 * SIMD wants. Implementations exist at four tiers (scalar baseline,
 * hardware POPCNT, AVX2 with the vpshufb nibble-LUT popcount, and
 * AVX-512 with vpopcntdq); which tiers are *compiled* is decided per
 * translation unit by CMake source properties (never globally — the
 * rest of the binary stays baseline x86-64), and which one *runs* is
 * decided here at runtime from CPUID. Every tier returns bit-identical
 * integer results; the scalar tier is the oracle the tests sweep
 * against.
 */

#ifndef ISAAC_XBAR_BATCH_KERNEL_H
#define ISAAC_XBAR_BATCH_KERNEL_H

#include <cstdint>

#include "common/types.h"

namespace isaac::xbar::kernel {

/** Instruction-set tiers, in increasing capability order. */
enum class Tier
{
    Scalar = 0, ///< Baseline x86-64 (or any other ISA).
    Popcnt = 1, ///< Hardware POPCNT.
    Avx2 = 2,   ///< AVX2 vpshufb nibble-LUT popcount, 4 lanes.
    Avx512 = 3, ///< AVX-512 vpopcntdq, 8 lanes.
};

/** Human-readable tier name ("scalar", "popcnt", ...). */
const char *tierName(Tier t);

/**
 * Best tier both compiled into this binary and supported by the
 * running CPU (CPUID-probed once, then cached).
 */
Tier detectedTier();

/** The tier dispatch currently selects: detectedTier() unless forced. */
Tier activeTier();

/**
 * Test hook: pin dispatch to one tier so the golden sweeps can prove
 * every available level bit-exact. fatal()s above detectedTier() —
 * forcing an unsupported tier would trap. Thread-safe; not meant to
 * be raced against kernel calls that must use a *specific* tier.
 */
void forceTier(Tier t);

/** Undo forceTier(); dispatch returns to detectedTier(). */
void resetTierOverride();

/**
 * The batched plane-major popcount GEMM (layouts above):
 *
 *   out[c * n + i] = sum_{b < cellBits} sum_{j < digitBits} 2^(b+j) *
 *       sum_{w < words} popcount(dig[(j*words + w)*n + i] &
 *                                cellPlanes[(c*cellBits + b)*words + w])
 *
 * for c in [0, cols) and i in [0, n). `out` must hold cols * n
 * accumulators; it is fully overwritten. n == 1 degenerates to the
 * single-vector packed read and takes register-resident special
 * cases. Dispatches on activeTier(); all tiers are bit-exact.
 */
void batchedBitlineSums(const std::uint64_t *cellPlanes, int cols,
                        int cellBits, int words,
                        const std::uint64_t *dig, int digitBits,
                        int n, Acc *out);

/**
 * Digital-merge rows for the engine's batched clip-free tile pass,
 * dispatched on activeTier() like the GEMM. Both are pure 64-bit
 * shift/add sweeps over the contiguous window index (every factor in
 * the bit-serial merge is a power of two), so each tier is the same
 * loop auto-vectorized under that tier's ISA flags; the popcnt tier
 * adds nothing over scalar here and shares its code. All tiers are
 * bit-exact (integer shift/add has one answer).
 *
 *   scaleAdd:        acc[i] +/-= row[i] << shift
 *   scaleAddFlipped: acc[i] +/-=
 *       (((1 << cellBits) - 1) * units[i] - row[i]) << shift
 *
 * (the flipped form is encoding.h's unflipColumnSum applied across a
 * window row; `negate` selects subtraction, which the engine uses
 * for the final two's-complement phase).
 */
void scaleAdd(Acc *acc, const Acc *row, int shift, bool negate,
              int n);
void scaleAddFlipped(Acc *acc, const Acc *row, const Acc *units,
                     int cellBits, int shift, bool negate, int n);

/*
 * Tier entry points, defined only in the translation units CMake
 * compiles with the matching -m flags (batch_kernel_*.cc). Only the
 * dispatcher calls these; everyone else goes through
 * batchedBitlineSums().
 */
void batchedBitlineSumsPopcnt(const std::uint64_t *cellPlanes,
                              int cols, int cellBits, int words,
                              const std::uint64_t *dig, int digitBits,
                              int n, Acc *out);
void batchedBitlineSumsAvx2(const std::uint64_t *cellPlanes, int cols,
                            int cellBits, int words,
                            const std::uint64_t *dig, int digitBits,
                            int n, Acc *out);
void batchedBitlineSumsAvx512(const std::uint64_t *cellPlanes,
                              int cols, int cellBits, int words,
                              const std::uint64_t *dig, int digitBits,
                              int n, Acc *out);
void scaleAddAvx2(Acc *acc, const Acc *row, int shift, bool negate,
                  int n);
void scaleAddFlippedAvx2(Acc *acc, const Acc *row, const Acc *units,
                         int cellBits, int shift, bool negate, int n);
void scaleAddAvx512(Acc *acc, const Acc *row, int shift, bool negate,
                    int n);
void scaleAddFlippedAvx512(Acc *acc, const Acc *row,
                           const Acc *units, int cellBits, int shift,
                           bool negate, int n);

} // namespace isaac::xbar::kernel

#endif // ISAAC_XBAR_BATCH_KERNEL_H
