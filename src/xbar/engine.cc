#include "xbar/engine.h"

#include <algorithm>
#include <bit>

#include "common/bits.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "resilience/remap.h"
#include "xbar/batch_kernel.h"
#include "xbar/encoding.h"

namespace isaac::xbar {

int
EngineConfig::adcBits() const
{
    const int data = adcResolution(rows, dacBits, cellBits,
                                   flipEncoding);
    // The unit column sums raw input digits over all rows; it must
    // be representable too. For the default design point (128 rows,
    // v=1, w=2, encoded) both requirements are exactly 8 bits.
    const Acc unitMax = static_cast<Acc>(rows) *
        ((Acc{1} << dacBits) - 1);
    const int unit = log2Ceil(static_cast<std::uint64_t>(unitMax) + 1);
    return adcPolicy.capBits(std::max(data, unit));
}

void
EngineConfig::validate() const
{
    if (rows <= 0 || cols <= 0)
        fatal("EngineConfig: array dimensions must be positive");
    if (cellBits < 1 || cellBits > 8 || kDataBits % cellBits != 0)
        fatal("EngineConfig: cell bits must divide 16");
    if (dacBits < 1 || dacBits > 8 || kDataBits % dacBits != 0)
        fatal("EngineConfig: DAC bits must divide 16");
    if (inputMode == InputMode::TwosComplement && dacBits != 1) {
        fatal("EngineConfig: two's-complement input streaming "
              "requires a 1-bit DAC; use InputMode::Biased");
    }
    if (outputsPerArray() < 1) {
        fatal("EngineConfig: array narrower than one sliced weight ("
              + std::to_string(slicesPerWeight()) + " columns)");
    }
    if (spareCols < 0 || spareCols > cols)
        fatal("EngineConfig: spare columns must be in [0, cols]");
    if (noise.maxProgramPulses < 1)
        fatal("EngineConfig: maxProgramPulses must be >= 1");
    if (maxReadRetries < 0)
        fatal("EngineConfig: maxReadRetries must be non-negative");
    if (retryBackoffCycles < 1)
        fatal("EngineConfig: retryBackoffCycles must be >= 1");
    if (threads < 0 || threads > kMaxThreads)
        fatal("EngineConfig: thread count must be in [0, " +
              std::to_string(kMaxThreads) + "]");
    if (memoEntries < 0)
        fatal("EngineConfig: memoEntries must be non-negative");
    adcPolicy.validate();
}

BitSerialEngine::BitSerialEngine(const EngineConfig &cfg,
                                 std::span<const Word> weights,
                                 int numInputs, int numOutputs)
    : cfg(cfg), _numInputs(numInputs), _numOutputs(numOutputs),
      adc(cfg.adcBits(), cfg.noise.anyEnabled())
{
    cfg.validate();
    if (numInputs <= 0 || numOutputs <= 0)
        fatal("BitSerialEngine: matrix dimensions must be positive");
    if (weights.size() !=
        static_cast<std::size_t>(numInputs) * numOutputs) {
        fatal("BitSerialEngine: weight span size does not match the "
              "matrix dimensions");
    }

    _rowSegments = static_cast<int>(ceilDiv(numInputs, cfg.rows));
    _colSegments = static_cast<int>(
        ceilDiv(numOutputs, cfg.outputsPerArray()));
    tiles.resize(static_cast<std::size_t>(_rowSegments) *
                 _colSegments);

    _log.configure(kLogTileBase + kLogTileStride * tiles.size());
    _folded.assign(_log.counters(), 0);
    memos.resize(tiles.size());
    for (auto &m : memos)
        m = std::make_unique<TileMemo>();
    for (int rs = 0; rs < _rowSegments; ++rs) {
        for (int cs = 0; cs < _colSegments; ++cs) {
            auto &t = tile(rs, cs);
            t.usedRows = std::min(cfg.rows,
                                  numInputs - rs * cfg.rows);
            t.localOutputs =
                std::min(cfg.outputsPerArray(),
                         numOutputs - cs * cfg.outputsPerArray());
            // Physical columns: data + configured spares + the unit
            // column + the ABFT checksum column if enabled. Each
            // tile's fault/write streams are salted with its index
            // so arrays fail independently.
            t.array = std::make_unique<CrossbarArray>(
                cfg.rows,
                cfg.cols + cfg.spareCols + 1 +
                    (cfg.abftChecksum ? 1 : 0),
                cfg.cellBits);
            t.array->setNoise(
                cfg.noise,
                static_cast<std::uint64_t>(rs) * _colSegments + cs);
        }
    }
    // Tiles are independent (each owns its array and write RNG), so
    // program them in parallel; within a tile the write order is the
    // serial one, keeping stored levels bit-identical.
    parallelFor(
        static_cast<std::int64_t>(tiles.size()), cfg.threads,
        [&](std::int64_t i, int) {
            const int rs = static_cast<int>(i) / _colSegments;
            const int cs = static_cast<int>(i) % _colSegments;
            programTile(tile(rs, cs), weights, rs * cfg.rows,
                        cs * cfg.outputsPerArray());
        });
}

BitSerialEngine::ArrayTile &
BitSerialEngine::tile(int rs, int cs)
{
    return tiles[static_cast<std::size_t>(rs) * _colSegments + cs];
}

const BitSerialEngine::ArrayTile &
BitSerialEngine::tile(int rs, int cs) const
{
    return tiles[static_cast<std::size_t>(rs) * _colSegments + cs];
}

std::int64_t
BitSerialEngine::programTile(ArrayTile &t,
                             std::span<const Word> weights,
                             int rowBase, int outBase)
{
    const int slices = cfg.slicesPerWeight();
    const int dataCols = t.localOutputs * slices;
    const int logicalCols = dataCols + 1; // + the unit column
    t.flipped.assign(static_cast<std::size_t>(dataCols), false);
    t.sumBiased.assign(static_cast<std::size_t>(t.localOutputs), 0);

    // Build the intended level matrix in logical layout: biased
    // digits, then the flip encoding, then the unit column (a
    // 1-valued cell in every used row, producing the sum of the
    // input digits each phase).
    std::vector<int> next(
        static_cast<std::size_t>(cfg.rows) * logicalCols, 0);
    auto at = [&](int r, int c) -> int & {
        return next[static_cast<std::size_t>(r) * logicalCols + c];
    };
    for (int o = 0; o < t.localOutputs; ++o) {
        const int k = outBase + o;
        for (int r = 0; r < t.usedRows; ++r) {
            const Word w = weights[static_cast<std::size_t>(k) *
                                       _numInputs +
                                   (rowBase + r)];
            const std::uint16_t u = biasWeight(w);
            t.sumBiased[static_cast<std::size_t>(o)] += u;
            const auto digits = sliceWeight(u, cfg.cellBits);
            for (int s = 0; s < slices; ++s)
                at(r, o * slices + s) =
                    digits[static_cast<std::size_t>(s)];
        }
    }
    if (cfg.flipEncoding) {
        std::vector<int> levels(static_cast<std::size_t>(t.usedRows));
        for (int c = 0; c < dataCols; ++c) {
            for (int r = 0; r < t.usedRows; ++r)
                levels[static_cast<std::size_t>(r)] = at(r, c);
            if (shouldFlipColumn(levels, cfg.cellBits)) {
                t.flipped[static_cast<std::size_t>(c)] = true;
                for (int r = 0; r < t.usedRows; ++r)
                    at(r, c) = flipLevel(at(r, c), cfg.cellBits);
            }
        }
    }
    for (int r = 0; r < t.usedRows; ++r)
        at(r, dataCols) = 1;

    // First programming pass: fault-aware placement decides which
    // physical column serves each logical column (identity unless
    // program-verify flags mismatches and spares are available).
    // Reprogramming keeps the placement and rewrites differentially.
    std::int64_t writes = 0;
    std::vector<int> stored;
    if (t.colMap.empty()) {
        std::vector<int> preferred(
            static_cast<std::size_t>(logicalCols));
        for (int c = 0; c < dataCols; ++c)
            preferred[static_cast<std::size_t>(c)] = c;
        preferred[static_cast<std::size_t>(dataCols)] =
            cfg.cols + cfg.spareCols;
        std::vector<int> spares(
            static_cast<std::size_t>(cfg.spareCols));
        for (int s = 0; s < cfg.spareCols; ++s)
            spares[static_cast<std::size_t>(s)] = cfg.cols + s;
        auto plan = resilience::assignColumns(
            *t.array, next, cfg.rows, t.usedRows, logicalCols,
            preferred, spares);
        t.colMap = std::move(plan.colMap);
        t.faults = std::move(plan.faults);
        t.remappedColumns = plan.remappedColumns;
        t.uncorrectableCells = plan.uncorrectableCells;
        writes = plan.cellWrites;
        stored = std::move(plan.stored);
    } else {
        auto plan = resilience::reprogramColumns(
            *t.array, next, t.intended, cfg.rows, t.usedRows,
            logicalCols, t.colMap);
        t.faults = std::move(plan.faults);
        t.uncorrectableCells = plan.uncorrectableCells;
        writes = plan.cellWrites;
        stored = std::move(plan.stored);
    }
    t.intended = std::move(next);
    if (cfg.abftChecksum)
        programChecksum(t, stored);
    return writes;
}

void
BitSerialEngine::programChecksum(ArrayTile &t,
                                 std::span<const int> stored)
{
    // Checksum targets come from the *stored* levels the placement
    // pass left behind — reusing the readback its verification loop
    // already performed instead of re-reading every cell — unflipped
    // to the logical encoding so the digital check in
    // runPhaseSegment, which also unflips, stays consistent.
    // Deriving targets from readback rather than intent means
    // permanent write failures the remapper already reported do not
    // raise ABFT alarms forever.
    const int slices = cfg.slicesPerWeight();
    const int dataCols = t.localOutputs * slices;
    const int logicalCols = dataCols + 1;
    const int mask = (1 << cfg.cellBits) - 1;
    std::vector<int> target(static_cast<std::size_t>(t.usedRows), 0);
    for (int r = 0; r < t.usedRows; ++r) {
        int sum = 0;
        for (int c = 0; c < dataCols; ++c) {
            int lvl = stored[static_cast<std::size_t>(r) *
                                 logicalCols +
                             c];
            if (t.flipped[static_cast<std::size_t>(c)])
                lvl = flipLevel(lvl, cfg.cellBits);
            sum += lvl;
        }
        target[static_cast<std::size_t>(r)] = sum & mask;
    }
    // The checksum column obeys the same flip rule as data columns
    // so its bitline sum stays inside the encoded ADC range.
    t.checksumFlipped =
        cfg.flipEncoding && shouldFlipColumn(target, cfg.cellBits);
    if (t.checksumFlipped) {
        for (int &lvl : target)
            lvl = flipLevel(lvl, cfg.cellBits);
    }
    t.abftOk = true;
    const int phys = checksumCol();
    for (int r = 0; r < t.usedRows; ++r) {
        const int want = target[static_cast<std::size_t>(r)];
        int have = t.array->cell(r, phys);
        if (have != want) {
            t.array->program(r, phys, want);
            have = t.array->cell(r, phys);
        }
        if (have != want)
            t.abftOk = false; // Defective column: run unchecked.
    }
}

std::int64_t
BitSerialEngine::reprogram(std::span<const Word> weights)
{
    if (weights.size() !=
        static_cast<std::size_t>(_numInputs) * _numOutputs) {
        fatal("BitSerialEngine::reprogram: weight span size does "
              "not match the matrix dimensions");
    }
    const auto count = static_cast<std::int64_t>(tiles.size());
    std::vector<std::int64_t> writes(
        static_cast<std::size_t>(
            parallelWorkers(cfg.threads, count)),
        0);
    parallelFor(count, cfg.threads, [&](std::int64_t i, int w) {
        const int rs = static_cast<int>(i) / _colSegments;
        const int cs = static_cast<int>(i) % _colSegments;
        writes[static_cast<std::size_t>(w)] +=
            programTile(tile(rs, cs), weights, rs * cfg.rows,
                        cs * cfg.outputsPerArray());
    });
    std::int64_t total = 0;
    for (std::int64_t w : writes)
        total += w;
    // Stored levels (and possibly the abftOk/flip state) changed:
    // every memoized reading is stale. The packed planes invalidated
    // themselves on the program() calls above.
    clearMemos();
    return total;
}

bool
BitSerialEngine::fastPathActive() const
{
    return cfg.fastPath && !cfg.noise.readNoiseEnabled() &&
        !cfg.noise.driftEnabled() &&
        !_injected.load(std::memory_order_relaxed);
}

void
BitSerialEngine::packDigitPlanes(std::span<const Word> inputs, int p,
                                 int rs, int used, Partial &part) const
{
    // Fast-path digit extraction: the input digits land directly in
    // the packed planes (the scalar `digits` buffer is only needed by
    // the analog read primitive, which this path never calls).
    const int words = (cfg.rows + 63) / 64;
    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;
    auto &planes = part.digitPlanes;
    planes.assign(static_cast<std::size_t>(cfg.dacBits) * words, 0);
    for (int r = 0; r < used; ++r) {
        const Word x =
            inputs[static_cast<std::size_t>(rs * cfg.rows + r)];
        int d;
        if (twosComp) {
            d = bitOf(x, p);
        } else {
            const std::uint16_t y = static_cast<std::uint16_t>(
                static_cast<Acc>(x) + kWeightBias);
            d = digitOf(static_cast<Word>(y), p * cfg.dacBits,
                        cfg.dacBits);
        }
        if (!d)
            continue;
        const std::uint64_t bit = std::uint64_t{1} << (r % 64);
        for (int j = 0; j < cfg.dacBits; ++j) {
            if ((d >> j) & 1)
                planes[static_cast<std::size_t>(j) * words + r / 64] |=
                    bit;
        }
    }
    // FNV-1a over the plane words; collisions are survivable (the
    // memo verifies full key equality) but rare enough not to cost.
    std::uint64_t h = 14695981039346656037ull;
    for (const std::uint64_t w : planes) {
        h ^= w;
        h *= 1099511628211ull;
    }
    part.planeHash = h;
}

bool
BitSerialEngine::memoReplay(int rs, int cs, Partial &part,
                            Acc &unit) const
{
    auto &memo =
        *memos[static_cast<std::size_t>(rs) * _colSegments + cs];
    std::lock_guard<std::mutex> lock(memo.m);
    const auto [begin, end] = memo.index.equal_range(part.planeHash);
    for (auto it = begin; it != end; ++it) {
        auto &e = memo.entries[it->second];
        if (e.key.size() != part.digitPlanes.size() ||
            !std::equal(e.key.begin(), e.key.end(),
                        part.digitPlanes.begin()))
            continue;
        // Replay: the cached deltas are exactly what a fresh
        // evaluation would add, so every counter stays identical to
        // an unmemoized run (including the array's own read-cycle
        // counter, charged explicitly).
        part.colQ.assign(e.colQ.begin(), e.colQ.end());
        unit = e.unit;
        part.stats.crossbarReads += e.reads;
        part.stats.adcSamples += e.tally.samples;
        auto &tileTally = part.tileAdc[static_cast<std::size_t>(
            rs * _colSegments + cs)];
        tileTally.merge(e.tally);
        part.transient.merge(e.transient);
        tile(rs, cs).array->chargeReadCycles(e.reads);
        e.lastUse = ++memo.clock;
        ++memo.hits;
        return true;
    }
    ++memo.misses;
    return false;
}

void
BitSerialEngine::memoInsert(
    int rs, int cs, const Partial &part, Acc unit,
    const EngineStats &statsBefore, const AdcTally &tallyBefore,
    const resilience::TransientStats &trBefore) const
{
    auto &memo =
        *memos[static_cast<std::size_t>(rs) * _colSegments + cs];
    std::lock_guard<std::mutex> lock(memo.m);
    // A racing worker may have inserted the same key meanwhile;
    // keeping one copy is enough (both computed identical values).
    const auto [begin, end] = memo.index.equal_range(part.planeHash);
    for (auto it = begin; it != end; ++it) {
        const auto &e = memo.entries[it->second];
        if (e.key.size() == part.digitPlanes.size() &&
            std::equal(e.key.begin(), e.key.end(),
                       part.digitPlanes.begin()))
            return;
    }
    std::size_t slotIdx;
    if (static_cast<int>(memo.entries.size()) < cfg.memoEntries) {
        slotIdx = memo.entries.size();
        memo.entries.emplace_back();
    } else {
        // Evict the least-recently-used entry (only reached once the
        // working set outgrows the capacity) and unhook its index.
        slotIdx = 0;
        for (std::size_t i = 1; i < memo.entries.size(); ++i)
            if (memo.entries[i].lastUse <
                memo.entries[slotIdx].lastUse)
                slotIdx = i;
        const auto [b, e] =
            memo.index.equal_range(memo.entries[slotIdx].hash);
        for (auto it = b; it != e; ++it) {
            if (it->second == slotIdx) {
                memo.index.erase(it);
                break;
            }
        }
    }
    MemoEntry *slot = &memo.entries[slotIdx];
    const auto &tileTally = part.tileAdc[static_cast<std::size_t>(
        rs * _colSegments + cs)];
    slot->hash = part.planeHash;
    slot->key.assign(part.digitPlanes.begin(),
                     part.digitPlanes.end());
    slot->colQ.assign(part.colQ.begin(), part.colQ.end());
    slot->unit = unit;
    slot->reads = part.stats.crossbarReads - statsBefore.crossbarReads;
    slot->tally.samples = tileTally.samples - tallyBefore.samples;
    slot->tally.clips = tileTally.clips - tallyBefore.clips;
    slot->tally.bitCycles =
        tileTally.bitCycles - tallyBefore.bitCycles;
    slot->transient = resilience::TransientStats{};
    slot->transient.abftChecks =
        part.transient.abftChecks - trBefore.abftChecks;
    slot->transient.abftMismatches =
        part.transient.abftMismatches - trBefore.abftMismatches;
    slot->transient.abftRetries =
        part.transient.abftRetries - trBefore.abftRetries;
    slot->transient.abftRetryCycles =
        part.transient.abftRetryCycles - trBefore.abftRetryCycles;
    slot->transient.abftUncorrected =
        part.transient.abftUncorrected - trBefore.abftUncorrected;
    slot->lastUse = ++memo.clock;
    memo.index.emplace(part.planeHash, slotIdx);
}

void
BitSerialEngine::clearMemos() const
{
    for (auto &m : memos) {
        std::lock_guard<std::mutex> lock(m->m);
        m->entries.clear();
        m->index.clear();
    }
}

std::uint64_t
BitSerialEngine::memoHits() const
{
    std::uint64_t total = 0;
    for (auto &m : memos) {
        std::lock_guard<std::mutex> lock(m->m);
        total += m->hits;
    }
    return total;
}

std::uint64_t
BitSerialEngine::memoMisses() const
{
    std::uint64_t total = 0;
    for (auto &m : memos) {
        std::lock_guard<std::mutex> lock(m->m);
        total += m->misses;
    }
    return total;
}

void
BitSerialEngine::runPhaseSegment(std::span<const Word> inputs, int p,
                                 int rs, std::uint64_t opSeq,
                                 Partial &part) const
{
    const int slices = cfg.slicesPerWeight();
    const int phases = cfg.phases();
    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;

    const int used = tile(rs, 0).usedRows;
    // Clean configurations take the packed bit-plane path: the digit
    // vector is packed once per (phase, row segment) and every tile
    // either replays a memoized reading of that vector or computes
    // it from popcounts. Both produce bit-identical values and
    // counter deltas to the scalar loop below (tests assert it).
    const bool fast = fastPathActive();
    if (fast) {
        packDigitPlanes(inputs, p, rs, used, part);
    } else {
        auto &digits = part.digits;
        digits.assign(static_cast<std::size_t>(used), 0);
        for (int r = 0; r < used; ++r) {
            const Word x =
                inputs[static_cast<std::size_t>(rs * cfg.rows + r)];
            if (twosComp) {
                digits[static_cast<std::size_t>(r)] = bitOf(x, p);
            } else {
                const std::uint16_t y = static_cast<std::uint16_t>(
                    static_cast<Acc>(x) + kWeightBias);
                digits[static_cast<std::size_t>(r)] =
                    digitOf(static_cast<Word>(y), p * cfg.dacBits,
                            cfg.dacBits);
            }
        }
    }
    part.stats.dacActivations += static_cast<std::uint64_t>(used);

    for (int cs = 0; cs < _colSegments; ++cs) {
        const auto &t = tile(rs, cs);
        const int dataCols = t.localOutputs * slices;
        auto &tileTally = part.tileAdc[static_cast<std::size_t>(
            rs * _colSegments + cs)];
        const bool checking = cfg.abftChecksum && t.abftOk;
        const std::uint64_t baseSeq =
            opSeq * static_cast<std::uint64_t>(phases) +
            static_cast<std::uint64_t>(p);

        Acc unit = 0;
        bool replayed = false;
        if (fast && cfg.memoEntries > 0)
            replayed = memoReplay(rs, cs, part, unit);
        if (!replayed) {
            const EngineStats statsBefore = part.stats;
            const AdcTally tallyBefore = tileTally;
            const resilience::TransientStats trBefore =
                part.transient;
            evalTilePhase(t, dataCols, checking, fast, baseSeq,
                          opSeq, part, tileTally, unit);
            if (fast && cfg.memoEntries > 0) {
                memoInsert(rs, cs, part, unit, statsBefore,
                           tallyBefore, trBefore);
            }
        }

        mergeTilePhase(t, cs, p, unit, part,
                       twosComp ? std::span<Acc>(part.result)
                                : std::span<Acc>(part.rawSum),
                       part.unitTotal);
    }
}

void
BitSerialEngine::mergeTilePhase(const ArrayTile &t, int cs, int p,
                                Acc unit, Partial &part,
                                std::span<Acc> acc,
                                Acc &unitTotal) const
{
    const int slices = cfg.slicesPerWeight();
    const int phases = cfg.phases();
    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;
    const auto &colQ = part.colQ;
    for (int o = 0; o < t.localOutputs; ++o) {
        Acc merged = 0;
        for (int s = 0; s < slices; ++s) {
            const int c = o * slices + s;
            merged += colQ[static_cast<std::size_t>(c)] *
                (Acc{1} << (s * cfg.cellBits));
            ++part.stats.shiftAdds;
        }
        const std::size_t k = static_cast<std::size_t>(
            cs * cfg.outputsPerArray() + o);
        if (twosComp) {
            // Remove the weight bias for this phase, then
            // shift-and-add (subtract for the sign bit).
            const Acc v = merged - kWeightBias * unit;
            acc[k] += (p == phases - 1 ? -v : v) * (Acc{1} << p);
        } else {
            acc[k] += merged * (Acc{1} << (p * cfg.dacBits));
        }
        ++part.stats.shiftAdds;
    }
    // unitTotal is a row-side quantity: accumulate it once per
    // (phase, row segment), not per column tile.
    if (!twosComp && cs == 0)
        unitTotal += unit * (Acc{1} << (p * cfg.dacBits));
}

template <typename ReadFn>
void
BitSerialEngine::evalTileAttempts(const ArrayTile &t, int dataCols,
                                  bool checking, Partial &part,
                                  AdcTally &tileTally, Acc &unit,
                                  ReadFn readFn) const
{
    // Read-attempt loop. Each attempt samples the unit column and
    // every mapped data column (spares the remapper left unused are
    // never sampled); with ABFT active the checksum column is
    // sampled too and the quantized total is verified mod 2^w. A
    // mismatch triggers a bounded re-read — the scalar read
    // primitive draws a fresh noise sequence per attempt, the packed
    // and batched primitives are deterministic — and the retry
    // decision depends only on the currents readFn supplies, so
    // every execution path shares this loop and every counter it
    // touches.
    //
    // Resolution law: the unit column converts first at the static
    // per-tile bound (its reading is the sum of this cycle's input
    // digits, unknowable before converting); the data and checksum
    // columns then run at the per-cycle bound the unit certifies —
    // reading <= (2^w - 1) * unit. A fixed policy resolves the full
    // converter width on every conversion (resolutionFor == cap).
    const int cap = adc.bits();
    const bool adaptive = cfg.adcPolicy.isAdaptive();
    const int unitRes = adaptive
        ? cfg.adcPolicy.resolutionFor(
              static_cast<Acc>(t.usedRows) *
                  ((Acc{1} << cfg.dacBits) - 1),
              cap)
        : cap;
    const Acc maxLevel = (Acc{1} << cfg.cellBits) - 1;
    auto &colQ = part.colQ;
    colQ.assign(static_cast<std::size_t>(dataCols), 0);
    for (int attempt = 0;; ++attempt) {
        const std::vector<Acc> &currents = readFn(attempt);
        ++part.stats.crossbarReads;
        unit = adc.quantizeAt(
            currents[static_cast<std::size_t>(
                t.colMap[static_cast<std::size_t>(dataCols)])],
            unitRes, tileTally);
        ++part.stats.adcSamples;
        const int dataRes = adaptive
            ? cfg.adcPolicy.resolutionFor(unit * maxLevel, cap)
            : cap;
        Acc rawTotal = 0;
        for (int c = 0; c < dataCols; ++c) {
            const int phys = t.colMap[static_cast<std::size_t>(c)];
            Acc v = adc.quantizeAt(
                currents[static_cast<std::size_t>(phys)], dataRes,
                tileTally);
            ++part.stats.adcSamples;
            if (t.flipped[static_cast<std::size_t>(c)])
                v = unflipColumnSum(v, unit, cfg.cellBits);
            colQ[static_cast<std::size_t>(c)] = v;
            rawTotal += v;
        }
        if (!checking)
            break;
        Acc s = adc.quantizeAt(
            currents[static_cast<std::size_t>(checksumCol())],
            dataRes, tileTally);
        ++part.stats.adcSamples;
        if (t.checksumFlipped)
            s = unflipColumnSum(s, unit, cfg.cellBits);
        ++part.transient.abftChecks;
        const Acc mod = Acc{1} << cfg.cellBits;
        if (((rawTotal - s) % mod + mod) % mod == 0)
            break;
        if (attempt == 0)
            ++part.transient.abftMismatches;
        if (attempt >= cfg.maxReadRetries) {
            ++part.transient.abftUncorrected;
            break;
        }
        ++part.transient.abftRetries;
        part.transient.abftRetryCycles +=
            static_cast<std::uint64_t>(cfg.retryBackoffCycles)
            << attempt;
    }
}

void
BitSerialEngine::evalTilePhase(const ArrayTile &t, int dataCols,
                               bool checking, bool fast,
                               std::uint64_t baseSeq,
                               std::uint64_t opSeq, Partial &part,
                               AdcTally &tileTally, Acc &unit) const
{
    if (fast) {
        evalTileAttempts(
            t, dataCols, checking, part, tileTally, unit,
            [&](int) -> const std::vector<Acc> & {
                t.array->readAllBitlinesPacked(part.digitPlanes,
                                               cfg.dacBits,
                                               part.currents);
                return part.currents;
            });
    } else {
        // The noise sequence salts the attempt into the high bits;
        // the drift clock stays pinned to opSeq — noise excursions
        // are retryable, drifted conductances are not.
        evalTileAttempts(
            t, dataCols, checking, part, tileTally, unit,
            [&](int attempt) -> const std::vector<Acc> & {
                t.array->readAllBitlinesInto(
                    part.digits,
                    baseSeq +
                        (static_cast<std::uint64_t>(attempt) << 40),
                    opSeq, part.currents);
                return part.currents;
            });
    }
}

std::vector<Acc>
BitSerialEngine::dotProduct(std::span<const Word> inputs) const
{
    if (inputs.size() != static_cast<std::size_t>(_numInputs))
        fatal("BitSerialEngine::dotProduct: wrong input length");

    const int phases = cfg.phases();
    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;
    const std::uint64_t opSeq =
        _opSeq.fetch_add(1, std::memory_order_relaxed);

    // One task per (phase, row segment); partial sums, stats, and
    // ADC tallies land in per-worker accumulators. 64-bit integer
    // addition is associative, so any partitioning merges to the
    // exact serial result.
    const auto tasks =
        static_cast<std::int64_t>(phases) * _rowSegments;
    const int workers = parallelWorkers(cfg.threads, tasks);
    std::vector<Partial> parts(static_cast<std::size_t>(workers));
    for (auto &part : parts) {
        part.result.assign(static_cast<std::size_t>(_numOutputs), 0);
        if (!twosComp)
            part.rawSum.assign(static_cast<std::size_t>(_numOutputs),
                               0);
        part.tileAdc.assign(tiles.size(), AdcTally{});
    }

    parallelFor(tasks, cfg.threads, [&](std::int64_t task, int w) {
        runPhaseSegment(inputs, static_cast<int>(task / _rowSegments),
                        static_cast<int>(task % _rowSegments), opSeq,
                        parts[static_cast<std::size_t>(w)]);
    });

    // Merge the per-worker partials (slot order; the sums are
    // order-insensitive anyway).
    std::vector<Acc> result(std::move(parts[0].result));
    std::vector<Acc> rawSum(std::move(parts[0].rawSum));
    Acc unitTotal = parts[0].unitTotal;
    EngineStats delta = parts[0].stats;
    resilience::TransientStats transientDelta = parts[0].transient;
    std::vector<AdcTally> tileTally(std::move(parts[0].tileAdc));
    for (std::size_t w = 1; w < parts.size(); ++w) {
        const auto &part = parts[w];
        transientDelta.merge(part.transient);
        for (int k = 0; k < _numOutputs; ++k)
            result[static_cast<std::size_t>(k)] +=
                part.result[static_cast<std::size_t>(k)];
        if (!twosComp) {
            for (int k = 0; k < _numOutputs; ++k)
                rawSum[static_cast<std::size_t>(k)] +=
                    part.rawSum[static_cast<std::size_t>(k)];
        }
        unitTotal += part.unitTotal;
        delta.crossbarReads += part.stats.crossbarReads;
        delta.adcSamples += part.stats.adcSamples;
        delta.shiftAdds += part.stats.shiftAdds;
        delta.dacActivations += part.stats.dacActivations;
        for (std::size_t i = 0; i < tileTally.size(); ++i)
            tileTally[i].merge(part.tileAdc[i]);
    }
    AdcTally tally;
    for (const auto &t : tileTally)
        tally.merge(t);

    if (!twosComp) {
        // sum(x*w) = sum(y*u) - B*sum(y) - B*sum(u) + R*B^2 with
        // y = x + B, u = w + B (Sec. V's bias, applied to both
        // operands).
        Acc totalUsedRows = 0;
        for (int rs = 0; rs < _rowSegments; ++rs)
            totalUsedRows += tile(rs, 0).usedRows;
        for (int k = 0; k < _numOutputs; ++k) {
            Acc sumU = 0;
            const int cs = k / cfg.outputsPerArray();
            const int o = k % cfg.outputsPerArray();
            for (int rs = 0; rs < _rowSegments; ++rs)
                sumU += tile(rs, cs)
                            .sumBiased[static_cast<std::size_t>(o)];
            result[static_cast<std::size_t>(k)] =
                rawSum[static_cast<std::size_t>(k)] -
                kWeightBias * unitTotal - kWeightBias * sumU +
                totalUsedRows * kWeightBias * kWeightBias;
        }
    }

    // Drift refresh policy: after every refreshIntervalOps
    // operations, every array is re-verified against its stored
    // levels (the read-path drift model already treats refreshed
    // cells as exact — see CrossbarArray::effectiveLevel — so the
    // pass is pure accounting: one pulse per programmed cell,
    // charged to the WriteModel by the callers that price energy).
    // Keyed by opSeq, so any call interleaving charges identically.
    if (cfg.noise.driftEnabled() && cfg.noise.refreshIntervalOps &&
        (opSeq + 1) % cfg.noise.refreshIntervalOps == 0) {
        for (const auto &t : tiles) {
            ++transientDelta.driftRefreshes;
            transientDelta.refreshPulses += static_cast<std::uint64_t>(
                t.array->programmedCells());
        }
    }

    adc.addTally(tally);
    publishDelta(1, delta, tally, transientDelta, tileTally);
    return result;
}

void
BitSerialEngine::packBitPlanesBatch(
    std::span<const Word> inputs, int first, int n, int rs, int used,
    std::vector<std::uint64_t> &dig) const
{
    const int words = (cfg.rows + 63) / 64;
    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;
    dig.assign(static_cast<std::size_t>(kDataBits) * words * n, 0);
    // Distance between bit-plane b and b + 1 in the matrix.
    const std::size_t planeStride =
        static_cast<std::size_t>(words) * n;
    for (int i = 0; i < n; ++i) {
        const Word *x = inputs.data() +
            static_cast<std::size_t>(first + i) * _numInputs +
            static_cast<std::size_t>(rs) * cfg.rows;
        for (int r = 0; r < used; ++r) {
            // The streamed 16-bit value: raw two's-complement bits
            // (bitOf semantics) or the biased x + 2^15 (digitOf on
            // the biased value); either way bit b lands in plane b.
            unsigned y = twosComp
                ? static_cast<std::uint16_t>(x[r])
                : static_cast<std::uint16_t>(static_cast<Acc>(x[r]) +
                                             kWeightBias);
            if (!y)
                continue;
            const std::uint64_t bit = std::uint64_t{1} << (r & 63);
            std::uint64_t *base = dig.data() +
                static_cast<std::size_t>(r >> 6) * n + i;
            // Scatter the set bits (ctz walk: no per-plane branch
            // mispredictions, and sign-extended small activations
            // skip their all-zero planes for free).
            do {
                const int b = std::countr_zero(y);
                y &= y - 1;
                base[static_cast<std::size_t>(b) * planeStride] |=
                    bit;
            } while (y);
        }
    }
}

void
BitSerialEngine::runBatchBlock(std::span<const Word> inputs,
                               int first, int n, std::span<Acc> out,
                               Acc *unitTotals, Partial &part) const
{
    const int slices = cfg.slicesPerWeight();
    const int phases = cfg.phases();
    const int words = (cfg.rows + 63) / 64;
    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;
    std::vector<std::uint64_t> dig;
    std::vector<Acc> curMat;
    Acc dummyUnitTotal = 0;
    // Column-major output accumulator (batchAcc[k * n + i]): the
    // vectorized digital pass adds into contiguous window runs and
    // one transpose at the end lands the block in `out`. ABFT tiles
    // merge straight into `out` instead; mixing is fine because both
    // only ever add.
    auto &batchAcc = part.batchAcc;
    batchAcc.assign(static_cast<std::size_t>(_numOutputs) * n, 0);
    auto &units = part.unitsBatch;
    auto &merged = part.mergedBatch;
    const Acc maxCode = adc.maxCode();
    const int cap = adc.bits();
    const bool adaptive = cfg.adcPolicy.isAdaptive();
    const Acc maxLevel = (Acc{1} << cfg.cellBits) - 1;
    // Clamped-ladder scratch: per-window data-column code ceilings
    // (all maxCode under a fixed policy; derived from the quantized
    // unit under an adaptive one, mirroring evalTileAttempts).
    std::vector<Acc> dataCeil;
    // Clip feasibility, decided once per tile per block: when even
    // the all-ones digit pattern cannot push any column past the ADC
    // ceiling — the common case; the flip encoding exists to
    // guarantee it for clean weights — quantize() is the identity on
    // every reading of the tile and the digital pass can skip
    // clamping entirely. Stuck-at-high cells can break the bound
    // (maxPackedReading reads the *stored* levels, so they are
    // counted), in which case the tile takes the clamped ladder.
    std::vector<char> mayClip(tiles.size());
    for (std::size_t ti = 0; ti < tiles.size(); ++ti) {
        mayClip[ti] =
            tiles[ti].array->maxPackedReading(cfg.dacBits) > maxCode;
    }
    const std::size_t phaseStride =
        static_cast<std::size_t>(cfg.dacBits) * words * n;
    for (int rs = 0; rs < _rowSegments; ++rs) {
        const int used = tile(rs, 0).usedRows;
        // One pass over the block's inputs packs every phase's
        // planes (phase p consumes the slice at bit p * dacBits);
        // the DAC still streams every phase, so its activations are
        // charged for all of them here.
        packBitPlanesBatch(inputs, first, n, rs, used, dig);
        part.stats.dacActivations +=
            static_cast<std::uint64_t>(used) * n * phases;
        for (int p = 0; p < phases; ++p) {
            const std::span<const std::uint64_t> digP(
                dig.data() + static_cast<std::size_t>(p) * phaseStride,
                phaseStride);
            for (int cs = 0; cs < _colSegments; ++cs) {
                const auto &t = tile(rs, cs);
                const int dataCols = t.localOutputs * slices;
                const int physCols = t.array->cols();
                const std::size_t ti =
                    static_cast<std::size_t>(rs * _colSegments + cs);
                auto &tileTally = part.tileAdc[ti];
                const bool checking = cfg.abftChecksum && t.abftOk;
                t.array->readAllBitlinesPackedBatch(digP, cfg.dacBits,
                                                    n, curMat);
                if (checking) {
                    // ABFT tiles keep the shared per-window attempt
                    // ladder (retries and their counters must match
                    // a sequential run exactly).
                    for (int i = 0; i < n; ++i) {
                        Acc unit = 0;
                        evalTileAttempts(
                            t, dataCols, checking, part, tileTally,
                            unit,
                            [&](int attempt)
                                -> const std::vector<Acc> & {
                                // Batched attempts are deterministic:
                                // the currents are the window's GEMM
                                // column, gathered once; every
                                // attempt still charges its read
                                // cycle so readCycles() matches a
                                // per-window run under ABFT retries.
                                if (attempt == 0) {
                                    part.currents.resize(
                                        static_cast<std::size_t>(
                                            physCols));
                                    for (int c = 0; c < physCols; ++c)
                                        part.currents[static_cast<
                                            std::size_t>(c)] =
                                            curMat[static_cast<
                                                       std::size_t>(
                                                       c) *
                                                       n +
                                                   i];
                                }
                                t.array->chargeReadCycles(1);
                                return part.currents;
                            });
                        const std::size_t base =
                            static_cast<std::size_t>(first + i) *
                            _numOutputs;
                        mergeTilePhase(
                            t, cs, p, unit, part,
                            out.subspan(base,
                                        static_cast<std::size_t>(
                                            _numOutputs)),
                            unitTotals ? unitTotals[first + i]
                                       : dummyUnitTotal);
                    }
                    continue;
                }
                // Unchecked tiles: one vectorized column-major
                // digital pass over the GEMM matrix, bit-identical
                // to n trips through evalTileAttempts (single
                // attempt) + mergeTilePhase. The window index is the
                // contiguous dimension, so every inner loop below is
                // a straight-line sweep the compiler vectorizes.
                // Counters are commutative sums, charged in bulk:
                part.stats.crossbarReads +=
                    static_cast<std::uint64_t>(n);
                part.stats.adcSamples +=
                    static_cast<std::uint64_t>(dataCols + 1) * n;
                tileTally.samples +=
                    static_cast<std::uint64_t>(dataCols + 1) * n;
                if (!adaptive) {
                    // Fixed policy: every conversion runs the full
                    // SAR ladder, so the cycle count is a closed
                    // form. Adaptive tiles charge per window below
                    // (the resolution depends on each unit reading).
                    tileTally.bitCycles +=
                        static_cast<std::uint64_t>(dataCols + 1) * n *
                        static_cast<std::uint64_t>(cap);
                }
                t.array->chargeReadCycles(n);
                part.stats.shiftAdds +=
                    static_cast<std::uint64_t>(n) * t.localOutputs *
                    (slices + 1);
                const Acc *unitRow = curMat.data() +
                    static_cast<std::size_t>(t.colMap[static_cast<
                        std::size_t>(dataCols)]) * n;
                if (!mayClip[ti]) {
                    if (adaptive) {
                        // The adaptive ceilings cover every clean
                        // reading whenever the fixed ones do (the
                        // unit-certified bound dominates the data
                        // readings, and the capped case falls back
                        // to maxCode — see evalTileAttempts), so the
                        // merge below stays bit-identical; only the
                        // realized comparator cycles differ.
                        const int unitRes = cfg.adcPolicy.resolutionFor(
                            static_cast<Acc>(t.usedRows) *
                                ((Acc{1} << cfg.dacBits) - 1),
                            cap);
                        std::uint64_t cycles = 0;
                        for (int i = 0; i < n; ++i) {
                            cycles += static_cast<std::uint64_t>(
                                unitRes +
                                dataCols *
                                    cfg.adcPolicy.resolutionFor(
                                        unitRow[i] * maxLevel, cap));
                        }
                        tileTally.bitCycles += cycles;
                    }
                    // Clip-free merge: quantize() is the identity on
                    // every reading of this tile (per the bound
                    // above), so the slices fold straight into the
                    // column-major accumulator as power-of-two
                    // shift/add rows through the kernel's vector
                    // tiers, and the unit column needs no clamped
                    // copy.
                    static_assert(kWeightBias == Acc{1} << 15,
                                  "bias-removal shift assumes the "
                                  "2^15 weight bias");
                    const int phShift =
                        twosComp ? p : p * cfg.dacBits;
                    const bool neg = twosComp && p == phases - 1;
                    for (int o = 0; o < t.localOutputs; ++o) {
                        Acc *accRow = batchAcc.data() +
                            static_cast<std::size_t>(
                                cs * cfg.outputsPerArray() + o) *
                                n;
                        for (int s = 0; s < slices; ++s) {
                            const int c = o * slices + s;
                            const Acc *row = curMat.data() +
                                static_cast<std::size_t>(
                                    t.colMap[static_cast<
                                        std::size_t>(c)]) *
                                    n;
                            const int shift =
                                s * cfg.cellBits + phShift;
                            if (t.flipped[static_cast<std::size_t>(
                                    c)]) {
                                kernel::scaleAddFlipped(
                                    accRow, row, unitRow,
                                    cfg.cellBits, shift, neg, n);
                            } else {
                                kernel::scaleAdd(accRow, row, shift,
                                                 neg, n);
                            }
                        }
                        if (twosComp) {
                            // Remove the per-phase weight bias:
                            // -sign * (unit << 15) << p.
                            kernel::scaleAdd(accRow, unitRow, 15 + p,
                                             !neg, n);
                        }
                    }
                    if (!twosComp && cs == 0 && unitTotals) {
                        kernel::scaleAdd(unitTotals + first, unitRow,
                                         p * cfg.dacBits, false, n);
                    }
                    continue;
                }
                // Clamped fallback (a stuck-at-high column can push
                // readings past the ADC ceiling): the scalar ladder,
                // clip counting included.
                std::uint64_t clips = 0;
                // Unit column first (quantize clamp order matches the
                // scalar ladder; a packed read can never go negative,
                // which is the one case quantize() panics on). Under
                // an adaptive policy the unit converts at the tile's
                // static-bound resolution and each window's data
                // columns clamp at the ceiling its quantized unit
                // certifies, exactly as evalTileAttempts does.
                const int unitRes = adaptive
                    ? cfg.adcPolicy.resolutionFor(
                          static_cast<Acc>(t.usedRows) *
                              ((Acc{1} << cfg.dacBits) - 1),
                          cap)
                    : cap;
                const Acc unitCeil = (Acc{1} << unitRes) - 1;
                units.resize(static_cast<std::size_t>(n));
                dataCeil.assign(static_cast<std::size_t>(n), maxCode);
                std::uint64_t cycles = 0;
                for (int i = 0; i < n; ++i) {
                    const Acc u = unitRow[i];
                    clips += static_cast<std::uint64_t>(u > unitCeil);
                    const Acc uq = u > unitCeil ? unitCeil : u;
                    units[static_cast<std::size_t>(i)] = uq;
                    if (adaptive) {
                        const int res = cfg.adcPolicy.resolutionFor(
                            uq * maxLevel, cap);
                        dataCeil[static_cast<std::size_t>(i)] =
                            (Acc{1} << res) - 1;
                        cycles += static_cast<std::uint64_t>(
                            unitRes + dataCols * res);
                    }
                }
                if (adaptive)
                    tileTally.bitCycles += cycles;
                merged.resize(static_cast<std::size_t>(n));
                const Acc full = (Acc{1} << cfg.cellBits) - 1;
                for (int o = 0; o < t.localOutputs; ++o) {
                    std::fill(merged.begin(), merged.end(), Acc{0});
                    for (int s = 0; s < slices; ++s) {
                        const int c = o * slices + s;
                        const Acc *row = curMat.data() +
                            static_cast<std::size_t>(
                                t.colMap[static_cast<std::size_t>(
                                    c)]) * n;
                        const Acc w = Acc{1} << (s * cfg.cellBits);
                        if (t.flipped[static_cast<std::size_t>(c)]) {
                            for (int i = 0; i < n; ++i) {
                                const Acc lim = dataCeil[
                                    static_cast<std::size_t>(i)];
                                Acc v = row[i];
                                clips += static_cast<std::uint64_t>(
                                    v > lim);
                                v = v > lim ? lim : v;
                                v = full *
                                        units[static_cast<
                                            std::size_t>(i)] -
                                    v;
                                merged[static_cast<std::size_t>(i)] +=
                                    v * w;
                            }
                        } else {
                            for (int i = 0; i < n; ++i) {
                                const Acc lim = dataCeil[
                                    static_cast<std::size_t>(i)];
                                Acc v = row[i];
                                clips += static_cast<std::uint64_t>(
                                    v > lim);
                                v = v > lim ? lim : v;
                                merged[static_cast<std::size_t>(i)] +=
                                    v * w;
                            }
                        }
                    }
                    const std::size_t k = static_cast<std::size_t>(
                        cs * cfg.outputsPerArray() + o);
                    Acc *accRow = batchAcc.data() + k * n;
                    if (twosComp) {
                        const Acc ph = Acc{1} << p;
                        const Acc sign = p == phases - 1 ? -1 : 1;
                        for (int i = 0; i < n; ++i) {
                            accRow[i] += sign *
                                (merged[static_cast<std::size_t>(i)] -
                                 kWeightBias *
                                     units[static_cast<std::size_t>(
                                         i)]) *
                                ph;
                        }
                    } else {
                        const Acc ph = Acc{1} << (p * cfg.dacBits);
                        for (int i = 0; i < n; ++i)
                            accRow[i] +=
                                merged[static_cast<std::size_t>(i)] *
                                ph;
                    }
                }
                tileTally.clips += clips;
                if (!twosComp && cs == 0 && unitTotals) {
                    const Acc ph = Acc{1} << (p * cfg.dacBits);
                    for (int i = 0; i < n; ++i)
                        unitTotals[first + i] +=
                            units[static_cast<std::size_t>(i)] * ph;
                }
            }
        }
    }
    // Land the column-major accumulator in the windows' out slices.
    for (int i = 0; i < n; ++i) {
        Acc *row = out.data() +
            static_cast<std::size_t>(first + i) * _numOutputs;
        for (int k = 0; k < _numOutputs; ++k)
            row[k] +=
                batchAcc[static_cast<std::size_t>(k) * n + i];
    }
}

std::vector<Acc>
BitSerialEngine::dotProductBatch(std::span<const Word> inputs,
                                 int count) const
{
    if (count < 0 ||
        inputs.size() !=
            static_cast<std::size_t>(count) * _numInputs) {
        fatal("BitSerialEngine::dotProductBatch: input span does not "
              "hold count x numInputs words");
    }
    std::vector<Acc> out(
        static_cast<std::size_t>(count) * _numOutputs, 0);
    if (count == 0)
        return out;
    if (!fastPathActive()) {
        // Noisy / drifting / fault-injected engines take the scalar
        // per-window path — identical to the caller looping
        // dotProduct(), including the per-op noise realizations.
        for (int i = 0; i < count; ++i) {
            const auto r = dotProduct(inputs.subspan(
                static_cast<std::size_t>(i) * _numInputs,
                static_cast<std::size_t>(_numInputs)));
            std::copy(r.begin(), r.end(),
                      out.begin() +
                          static_cast<std::size_t>(i) * _numOutputs);
        }
        return out;
    }

    const bool twosComp = cfg.inputMode == InputMode::TwosComplement;
    // Claim the op-sequence range `count` dotProduct() calls would:
    // the fast path never draws from the noise streams, but later
    // scalar operations (say, after a fault injection stands the
    // fast path down) must observe the same sequence either way.
    _opSeq.fetch_add(static_cast<std::uint64_t>(count),
                     std::memory_order_relaxed);

    // One task per contiguous window block. A block owns its windows
    // end to end — their result slices and unit totals are written
    // by exactly one worker — so only the commutative counters go
    // through per-worker Partials. The block size balances SIMD row
    // length against load balance; results and counters are
    // independent of it (and of the thread count).
    const int blockSize = std::clamp(
        static_cast<int>(
            ceilDiv(static_cast<std::int64_t>(count),
                    static_cast<std::int64_t>(
                        parallelWorkers(cfg.threads, count)))),
        8, 256);
    const auto blocks = static_cast<std::int64_t>(
        ceilDiv(count, blockSize));
    const int workers = parallelWorkers(cfg.threads, blocks);
    std::vector<Partial> parts(static_cast<std::size_t>(workers));
    for (auto &part : parts)
        part.tileAdc.assign(tiles.size(), AdcTally{});
    std::vector<Acc> unitTotals;
    if (!twosComp)
        unitTotals.assign(static_cast<std::size_t>(count), 0);

    parallelFor(blocks, cfg.threads, [&](std::int64_t blk, int w) {
        const int first = static_cast<int>(blk) * blockSize;
        runBatchBlock(inputs, first,
                      std::min(blockSize, count - first),
                      std::span<Acc>(out),
                      twosComp ? nullptr : unitTotals.data(),
                      parts[static_cast<std::size_t>(w)]);
    });

    EngineStats delta = parts[0].stats;
    resilience::TransientStats transientDelta = parts[0].transient;
    std::vector<AdcTally> tileTally(std::move(parts[0].tileAdc));
    for (std::size_t w = 1; w < parts.size(); ++w) {
        const auto &part = parts[w];
        transientDelta.merge(part.transient);
        delta.crossbarReads += part.stats.crossbarReads;
        delta.adcSamples += part.stats.adcSamples;
        delta.shiftAdds += part.stats.shiftAdds;
        delta.dacActivations += part.stats.dacActivations;
        for (std::size_t i = 0; i < tileTally.size(); ++i)
            tileTally[i].merge(part.tileAdc[i]);
    }
    AdcTally tally;
    for (const auto &t : tileTally)
        tally.merge(t);

    if (!twosComp) {
        // The same bias inversion dotProduct() applies, per window
        // (sum(x*w) = sum(y*u) - B*sum(y) - B*sum(u) + R*B^2).
        Acc totalUsedRows = 0;
        for (int rs = 0; rs < _rowSegments; ++rs)
            totalUsedRows += tile(rs, 0).usedRows;
        std::vector<Acc> sumU(static_cast<std::size_t>(_numOutputs));
        for (int k = 0; k < _numOutputs; ++k) {
            const int cs = k / cfg.outputsPerArray();
            const int o = k % cfg.outputsPerArray();
            Acc s = 0;
            for (int rs = 0; rs < _rowSegments; ++rs)
                s += tile(rs, cs)
                         .sumBiased[static_cast<std::size_t>(o)];
            sumU[static_cast<std::size_t>(k)] = s;
        }
        for (int i = 0; i < count; ++i) {
            Acc *row =
                out.data() + static_cast<std::size_t>(i) * _numOutputs;
            for (int k = 0; k < _numOutputs; ++k) {
                row[k] = row[k] -
                    kWeightBias *
                        unitTotals[static_cast<std::size_t>(i)] -
                    kWeightBias * sumU[static_cast<std::size_t>(k)] +
                    totalUsedRows * kWeightBias * kWeightBias;
            }
        }
    }

    // fastPathActive() implies drift is disabled, so the periodic
    // refresh accounting dotProduct() performs can never trigger.
    adc.addTally(tally);
    publishDelta(static_cast<std::uint64_t>(count), delta, tally,
                 transientDelta, tileTally);
    return out;
}

int
BitSerialEngine::physicalArrays() const
{
    return _rowSegments * _colSegments;
}

void
BitSerialEngine::publishDelta(
    std::uint64_t ops, const EngineStats &delta,
    const AdcTally &total, const resilience::TransientStats &tr,
    std::span<const AdcTally> tileTally) const
{
    // Flatten the finished call's counters into the log layout and
    // publish them as one epoch. The delta lives entirely in
    // caller-owned scratch, so this is the only point where the call
    // touches shared state — and it touches only this thread's slot.
    std::vector<std::uint64_t> flat(_log.counters(), 0);
    flat[0] = ops;
    flat[1] = delta.crossbarReads;
    flat[2] = delta.adcSamples;
    flat[3] = total.clips;
    flat[4] = delta.shiftAdds;
    flat[5] = delta.dacActivations;
    flat[6] = total.bitCycles;
    std::uint64_t *t = flat.data() + kLogEngineFields;
    t[0] = tr.abftChecks;
    t[1] = tr.abftMismatches;
    t[2] = tr.abftRetries;
    t[3] = tr.abftRetryCycles;
    t[4] = tr.abftUncorrected;
    t[5] = tr.abftDisabledTiles;
    t[6] = tr.driftRefreshes;
    t[7] = tr.refreshPulses;
    t[8] = tr.eccWords;
    t[9] = tr.eccBitFlips;
    t[10] = tr.eccSingles;
    t[11] = tr.eccDoubles;
    t[12] = tr.eccRecomputedWords;
    t[13] = tr.eccRecomputeCycles;
    t[14] = tr.packetsSent;
    t[15] = tr.packetsCorrupted;
    t[16] = tr.packetsRetransmitted;
    t[17] = tr.packetBackoffCycles;
    t[18] = tr.packetsUncorrected;
    t[19] = tr.deadLinks;
    for (std::size_t i = 0; i < tileTally.size(); ++i) {
        const std::size_t base = kLogTileBase + kLogTileStride * i;
        flat[base] = tileTally[i].samples;
        flat[base + 1] = tileTally[i].clips;
        flat[base + 2] = tileTally[i].bitCycles;
    }
    _log.publish(flat);
}

void
BitSerialEngine::foldLocked() const
{
    _log.fold(_foldCursor, _folded);
}

EngineStats
BitSerialEngine::stats() const
{
    std::lock_guard<std::mutex> lock(_foldMutex);
    foldLocked();
    EngineStats s;
    s.ops = _folded[0];
    s.crossbarReads = _folded[1];
    s.adcSamples = _folded[2];
    s.adcClips = _folded[3];
    s.shiftAdds = _folded[4];
    s.dacActivations = _folded[5];
    s.adcBitCycles = _folded[6];
    return s;
}

void
BitSerialEngine::resetStats()
{
    {
        // Rewind the epoch log and the reader-side cursor together.
        // The caller guarantees no dotProduct() is in flight (same
        // contract as reprogram), so reset() observes no half-
        // published epochs; dropping the cursor forgets the cached
        // pre-reset snapshots outright.
        std::lock_guard<std::mutex> lock(_foldMutex);
        _log.reset();
        _foldCursor = EpochLog::Cursor{};
        std::fill(_folded.begin(), _folded.end(), std::uint64_t{0});
    }
    adc.resetStats();
    for (auto &t : tiles)
        t.array->resetStats();
    // The memo is a counter the engine owns too: drop the cached
    // entries AND the hit/miss diagnostics, so a replayed campaign
    // reports exactly what a fresh engine would instead of stale
    // lifetime counts against a pre-warmed cache.
    for (auto &m : memos) {
        std::lock_guard<std::mutex> lock(m->m);
        m->entries.clear();
        m->index.clear();
        m->clock = 0;
        m->hits = 0;
        m->misses = 0;
    }
    // Rewind the op counter so a replayed workload draws the same
    // noise/drift/retry realization a fresh engine would (the arrays
    // rewind their own sequences above).
    _opSeq.store(0, std::memory_order_relaxed);
}

void
BitSerialEngine::advanceOpClock(std::uint64_t ops)
{
    _opSeq.fetch_add(ops, std::memory_order_relaxed);
}

std::uint64_t
BitSerialEngine::adcClips() const
{
    return adc.clips();
}

std::uint64_t
BitSerialEngine::readCycles() const
{
    std::uint64_t cycles = 0;
    for (const auto &t : tiles)
        cycles += t.array->readCycles();
    return cycles;
}

double
BitSerialEngine::cellUtilization() const
{
    const double perArray = static_cast<double>(cfg.rows) *
        (cfg.cols + cfg.spareCols + 1 + (cfg.abftChecksum ? 1 : 0));
    double used = 0;
    for (const auto &t : tiles) {
        used += static_cast<double>(t.usedRows) *
            (t.localOutputs * cfg.slicesPerWeight() + 1);
    }
    return used / (perArray * static_cast<double>(tiles.size()));
}

resilience::ArrayFaultReport
BitSerialEngine::faultReport() const
{
    resilience::ArrayFaultReport report;
    for (int rs = 0; rs < _rowSegments; ++rs)
        for (int cs = 0; cs < _colSegments; ++cs)
            report.merge(tileFaultReport(rs, cs));
    return report;
}

resilience::ArrayFaultReport
BitSerialEngine::tileFaultReport(int rs, int cs) const
{
    const auto &t = tile(rs, cs);
    resilience::ArrayFaultReport report;
    report.stuckCells = t.array->stuckCells();
    report.faultyCells = t.faults.count();
    report.remappedColumns = t.remappedColumns;
    report.uncorrectableCells = t.uncorrectableCells;
    report.programPulses =
        static_cast<std::int64_t>(t.array->programPulses());
    return report;
}

const resilience::FaultMap &
BitSerialEngine::faultMap(int rs, int cs) const
{
    return tile(rs, cs).faults;
}

AdcTally
BitSerialEngine::tileAdcTally(int rs, int cs) const
{
    const std::size_t i =
        static_cast<std::size_t>(rs) * _colSegments + cs;
    std::lock_guard<std::mutex> lock(_foldMutex);
    foldLocked();
    AdcTally tally;
    const std::size_t base = kLogTileBase + kLogTileStride * i;
    tally.samples = _folded[base];
    tally.clips = _folded[base + 1];
    tally.bitCycles = _folded[base + 2];
    return tally;
}

std::uint64_t
BitSerialEngine::programPulses() const
{
    std::uint64_t pulses = 0;
    for (const auto &t : tiles)
        pulses += t.array->programPulses();
    return pulses;
}

resilience::TransientStats
BitSerialEngine::transientStats() const
{
    resilience::TransientStats out;
    {
        std::lock_guard<std::mutex> lock(_foldMutex);
        foldLocked();
        const std::uint64_t *t = _folded.data() + kLogEngineFields;
        out.abftChecks = t[0];
        out.abftMismatches = t[1];
        out.abftRetries = t[2];
        out.abftRetryCycles = t[3];
        out.abftUncorrected = t[4];
        out.abftDisabledTiles = t[5];
        out.driftRefreshes = t[6];
        out.refreshPulses = t[7];
        out.eccWords = t[8];
        out.eccBitFlips = t[9];
        out.eccSingles = t[10];
        out.eccDoubles = t[11];
        out.eccRecomputedWords = t[12];
        out.eccRecomputeCycles = t[13];
        out.packetsSent = t[14];
        out.packetsCorrupted = t[15];
        out.packetsRetransmitted = t[16];
        out.packetBackoffCycles = t[17];
        out.packetsUncorrected = t[18];
        out.deadLinks = t[19];
    }
    // Disabled-tile count is structural (like the fault census), so
    // it is derived from the live tile state rather than accumulated.
    if (cfg.abftChecksum) {
        for (const auto &t : tiles)
            out.abftDisabledTiles += !t.abftOk;
    }
    return out;
}

void
BitSerialEngine::injectCellFault(int rs, int cs, int row, int col,
                                 int level)
{
    if (rs < 0 || rs >= _rowSegments || cs < 0 || cs >= _colSegments)
        fatal("BitSerialEngine::injectCellFault: tile out of range");
    auto &t = tile(rs, cs);
    t.array->forceStuck(row, col, level);
    // Stored levels no longer match what programming left behind, so
    // the packed fast path and every memoized reading stand down —
    // the campaign tests rely on the scalar path re-observing the
    // corrupted cell on every subsequent read. The per-tile taint
    // lets repairTile() re-arm the fast path once the last injured
    // tile is rebuilt.
    t.tainted = true;
    _injected.store(true, std::memory_order_relaxed);
    clearMemos();
}

TileRepairReport
BitSerialEngine::repairTile(int rs, int cs)
{
    if (rs < 0 || rs >= _rowSegments || cs < 0 || cs >= _colSegments)
        fatal("BitSerialEngine::repairTile: tile out of range");
    if (cfg.noise.writeNoiseEnabled()) {
        fatal("BitSerialEngine::repairTile: the march test cannot "
              "distinguish transient write errors from permanent "
              "faults; online repair requires writeSigmaLevels = 0");
    }
    ArrayTile &t = tile(rs, cs);
    TileRepairReport report;

    // Quarantined march: exercise every cell at both rails to census
    // the tile's current permanent faults. Destructive (the array
    // ends all-max), but the tile is rebuilt just below from the
    // intended levels the programming pass retained, so nothing is
    // lost.
    const auto marched = resilience::extractFaultMap(*t.array);
    report.faultsFound = marched.count();

    // Fresh content-aware placement against the new fault set — the
    // same preferred/spare layout the first programming pass used.
    // Columns whose preferred physical column went bad migrate onto
    // spares; when spares run out the least-bad column stays and its
    // mismatches surface as uncorrectableCells for the caller's
    // degradation decision.
    const int slices = cfg.slicesPerWeight();
    const int dataCols = t.localOutputs * slices;
    const int logicalCols = dataCols + 1;
    std::vector<int> preferred(static_cast<std::size_t>(logicalCols));
    for (int c = 0; c < dataCols; ++c)
        preferred[static_cast<std::size_t>(c)] = c;
    preferred[static_cast<std::size_t>(dataCols)] =
        cfg.cols + cfg.spareCols;
    std::vector<int> spares(static_cast<std::size_t>(cfg.spareCols));
    for (int s = 0; s < cfg.spareCols; ++s)
        spares[static_cast<std::size_t>(s)] = cfg.cols + s;
    auto plan = resilience::assignColumns(
        *t.array, t.intended, cfg.rows, t.usedRows, logicalCols,
        preferred, spares);
    t.colMap = std::move(plan.colMap);
    t.faults = std::move(plan.faults);
    t.remappedColumns = plan.remappedColumns;
    t.uncorrectableCells = plan.uncorrectableCells;
    if (cfg.abftChecksum)
        programChecksum(t, plan.stored);
    t.tainted = false;

    report.remappedColumns = t.remappedColumns;
    report.uncorrectableCells = t.uncorrectableCells;
    report.abftOk = !cfg.abftChecksum || t.abftOk;

    // The packed fast path stands down only while some tile still
    // carries an un-repaired injected fault: this tile's stored
    // levels once again match what programming left behind.
    bool tainted = false;
    for (const auto &other : tiles)
        tainted = tainted || other.tainted;
    _injected.store(tainted, std::memory_order_relaxed);
    clearMemos();
    return report;
}

bool
BitSerialEngine::abftActive(int rs, int cs) const
{
    return cfg.abftChecksum && tile(rs, cs).abftOk;
}

} // namespace isaac::xbar
