#include "xbar/adc_policy.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::xbar {

namespace {

/** Widest conversion the signed 64-bit merge accumulator can take
 *  ((1 << 63) - 1 would overflow the shift in maxCode()). */
constexpr int kAccumulatorBits = 62;

/** The SAR converter model's supported range (xbar/adc.h). */
constexpr int kConverterBits = 24;

} // namespace

const char *
adcPolicyKindName(AdcPolicyKind kind)
{
    return kind == AdcPolicyKind::Adaptive ? "adaptive" : "fixed";
}

AdcPolicy
AdcPolicy::fixed(int bits)
{
    if (bits == 0) {
        fatal("AdcPolicy::fixed: an explicit 0-bit resolution "
              "converts nothing; use a default AdcPolicy{} to derive "
              "the requirement from the geometry");
    }
    AdcPolicy p;
    p.kind = AdcPolicyKind::Fixed;
    p.bits = bits;
    p.validate();
    return p;
}

AdcPolicy
AdcPolicy::adaptive(int capBits, int minBits)
{
    AdcPolicy p;
    p.kind = AdcPolicyKind::Adaptive;
    p.bits = capBits;
    p.minBits = minBits;
    p.validate();
    return p;
}

int
AdcPolicy::expectedBits(int cap) const
{
    if (kind != AdcPolicyKind::Adaptive)
        return cap;
    const int expected = static_cast<int>(
        std::ceil(static_cast<double>(cap) +
                  std::log2(activityFactor)));
    return std::min(cap, std::max(minBits, expected));
}

void
AdcPolicy::validate() const
{
    if (bits < 0) {
        fatal("AdcPolicy: resolution must not be negative "
              "(0 = derive from the geometry)");
    }
    if (bits > kAccumulatorBits) {
        fatal("AdcPolicy: a " + std::to_string(bits) +
              "-bit conversion exceeds the signed 64-bit "
              "accumulator's " + std::to_string(kAccumulatorBits) +
              " usable bits — no bitline reading can need it");
    }
    if (bits > kConverterBits) {
        fatal("AdcPolicy: resolution " + std::to_string(bits) +
              " is outside the SAR converter model's supported "
              "range [1, " + std::to_string(kConverterBits) + "]");
    }
    if (minBits < 1 || minBits > kConverterBits) {
        fatal("AdcPolicy: the adaptive floor must be in [1, " +
              std::to_string(kConverterBits) + "]");
    }
    if (!(activityFactor > 0.0) || activityFactor > 1.0)
        fatal("AdcPolicy: activityFactor must be in (0, 1]");
}

std::string
AdcPolicy::label() const
{
    std::string s = adcPolicyKindName(kind);
    if (bits > 0)
        s += std::to_string(bits);
    return s;
}

} // namespace isaac::xbar
