/**
 * @file
 * The ADC resolution/energy policy surface.
 *
 * ISAAC's Table I fixes one SAR resolution per design point (Eq. 1/2
 * in xbar/adc.h). Newton (PAPERS.md) observes that most conversions
 * never need that many bits: the unit column's reading *is* the sum
 * of the input digits driven this phase, so once it is converted the
 * engine holds a certified per-cycle worst-case bound on every data
 * bitline of the same read —
 *
 *     reading_c = sum_r digit_r * level_{r,c}
 *               <= (2^w - 1) * sum_r digit_r = (2^w - 1) * unit
 *
 * — the per-phase analogue of `CrossbarArray::maxPackedReading()`'s
 * static content bound. A SAR converter resolves one bit per
 * comparator cycle, so truncating the conversion to the bound's
 * log2-ceiling bits returns the identical code whenever the cap
 * covers the derived requirement (the bound is an upper bound, so
 * quantization is the identity: provably lossless, bit-exact across
 * the scalar, packed, and batched execution tiers) while spending
 * fewer comparator cycles — the adcBitCycles counter the energy
 * model prices.
 *
 * One AdcPolicy value serves every layer: the functional engine
 * derives per-conversion resolutions from it, the energy catalog
 * prices converter power/area from it, the DSE sweeps it as an axis,
 * and campaign scenario IDs carry it for replay.
 */

#ifndef ISAAC_XBAR_ADC_POLICY_H
#define ISAAC_XBAR_ADC_POLICY_H

#include <algorithm>
#include <string>

#include "common/bits.h"
#include "common/types.h"

namespace isaac::xbar {

enum class AdcPolicyKind
{
    /** Every conversion runs the full configured resolution. */
    Fixed,
    /**
     * Newton-style adaptive-per-cycle: each conversion runs only as
     * many SAR cycles as the certified worst-case bound for that
     * reading requires, clamped to [minBits, cap].
     */
    Adaptive,
};

/** Stable token for scenario IDs / JSON ("fixed" / "adaptive"). */
const char *adcPolicyKindName(AdcPolicyKind kind);

/**
 * The pluggable ADC policy (see file comment). Default-constructed:
 * fixed at the derived Eq. (1)/(2) requirement — exactly the paper's
 * converter, and the configuration every pre-policy test pins.
 */
struct AdcPolicy
{
    AdcPolicyKind kind = AdcPolicyKind::Fixed;

    /**
     * Resolution override in bits; 0 = derive from the geometry.
     * Fixed: every conversion runs this resolution (an override
     * below the requirement models a cheaper converter whose clips
     * are counted). Adaptive: the converter's *cap* — the widest
     * conversion it can run; a cap covering the derived requirement
     * is provably lossless (see lossless()).
     */
    int bits = 0;

    /** Adaptive floor: a conversion never runs fewer SAR cycles. */
    int minBits = 1;

    /**
     * Analytic activity knob for the energy catalog only: the
     * expected fraction of the worst-case bound a typical cycle's
     * readings reach. 0.5 prices the average adaptive conversion one
     * bit under the cap (see expectedBits()); the functional engine
     * never reads this — it counts real comparator cycles.
     */
    double activityFactor = 0.5;

    /** Explicit fixed-resolution override; fatal() on 0 or out of
     *  range (the silent-clip sentinel the old adcBitsOverride
     *  accepted). */
    static AdcPolicy fixed(int bits);

    /** Adaptive policy; capBits 0 derives the cap (lossless). */
    static AdcPolicy adaptive(int capBits = 0, int minBits = 1);

    bool
    isAdaptive() const
    {
        return kind == AdcPolicyKind::Adaptive;
    }

    /** Converter sizing: the override/cap, or the derived bits. */
    int
    capBits(int derivedBits) const
    {
        return bits > 0 ? bits : derivedBits;
    }

    /**
     * True when the policy provably returns every conversion
     * unchanged for a geometry whose derived requirement is
     * `derivedBits`: the converter covers the requirement, so the
     * per-cycle bound law can only ever truncate *slack* bits.
     */
    bool
    lossless(int derivedBits) const
    {
        return capBits(derivedBits) >= derivedBits;
    }

    /**
     * SAR cycles for one conversion whose reading is certified
     * <= bound, on a cap-bit converter. Fixed policies always run
     * the full cap. Hot path: called once per conversion cycle.
     */
    int
    resolutionFor(Acc bound, int cap) const
    {
        if (kind != AdcPolicyKind::Adaptive)
            return cap;
        if (bound >= (Acc{1} << cap) - 1)
            return cap;
        const int need =
            log2Ceil(static_cast<std::uint64_t>(bound) + 1);
        return std::min(cap, std::max(minBits, need));
    }

    /**
     * Analytic expected per-conversion resolution for energy pricing
     * on a cap-bit converter: cap + log2(activityFactor) rounded up
     * (a typical reading at half the bound saves one SAR cycle),
     * clamped to [minBits, cap]. Fixed policies convert at the cap.
     */
    int expectedBits(int cap) const;

    /**
     * Sanity-check the field combination; descriptive fatal() on a
     * 0-bit explicit override (see fixed()), a resolution beyond the
     * 64-bit accumulator or the SAR model's range, a bad floor, or
     * an activity factor outside (0, 1].
     */
    void validate() const;

    /** "fixed" / "fixed7" / "adaptive" / "adaptive6" — the suffix is
     *  the explicit override/cap, omitted when derived. */
    std::string label() const;

    bool operator==(const AdcPolicy &) const = default;
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_ADC_POLICY_H
