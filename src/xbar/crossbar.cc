#include "xbar/crossbar.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "xbar/batch_kernel.h"

namespace isaac::xbar {

CrossbarArray::CrossbarArray(int rows, int cols, int cellBits)
    : _rows(rows), _cols(cols), _cellBits(cellBits),
      cells(static_cast<std::size_t>(rows) * cols, 0),
      stuckLevel(static_cast<std::size_t>(rows) * cols, -1),
      writeRng(noise.seed ^ 0xD1CEull)
{
    if (rows <= 0 || cols <= 0)
        fatal("CrossbarArray: dimensions must be positive");
    if (cellBits < 1 || cellBits > 8)
        fatal("CrossbarArray: cell bits must be in [1, 8]");
}

int
CrossbarArray::program(int row, int col, int level)
{
    if (row < 0 || row >= _rows || col < 0 || col >= _cols)
        fatal("CrossbarArray::program: cell index out of range");
    if (level < 0 || level > maxLevel())
        fatal("CrossbarArray::program: level exceeds cell precision");
    const int budget = std::max(1, noise.maxProgramPulses);
    const std::size_t idx =
        static_cast<std::size_t>(row) * _cols + col;
    invalidatePlanes();
    if (stuckLevel[idx] >= 0) {
        // The device does not respond; the write driver re-pulses
        // until verify matches or the budget runs out.
        cells[idx] = stuckLevel[idx];
        const int pulses = cells[idx] == level ? 1 : budget;
        _programPulses += static_cast<std::uint64_t>(pulses);
        return pulses;
    }
    if (!noise.writeNoiseEnabled()) {
        cells[idx] = level;
        ++_programPulses;
        return 1;
    }
    int pulses = 0;
    while (pulses < budget) {
        ++pulses;
        const double err =
            writeRng.gaussian() * noise.writeSigmaLevels;
        const int stored = std::clamp(
            static_cast<int>(std::lround(level + err)), 0,
            maxLevel());
        cells[idx] = stored;
        if (stored == level)
            break;
    }
    _programPulses += static_cast<std::uint64_t>(pulses);
    return pulses;
}

int
CrossbarArray::cell(int row, int col) const
{
    if (row < 0 || row >= _rows || col < 0 || col >= _cols)
        fatal("CrossbarArray::cell: index out of range");
    return cells[static_cast<std::size_t>(row) * _cols + col];
}

Acc
CrossbarArray::bitlineSum(int col, std::span<const int> inputs) const
{
    Acc sum = 0;
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        sum += static_cast<Acc>(inputs[r]) *
            cells[r * _cols + static_cast<std::size_t>(col)];
    }
    return sum;
}

int
CrossbarArray::driftedLevel(std::size_t idx, std::uint64_t t) const
{
    const int level = cells[idx];
    // Stuck cells are frozen by the defect; empty cells have nothing
    // to lose.
    if (level == 0 || stuckLevel[idx] >= 0)
        return level;
    const std::uint64_t interval = noise.refreshIntervalOps;
    const std::uint64_t age = interval ? t % interval : t;
    if (age == 0)
        return level;
    const std::uint64_t epoch = interval ? t / interval : 0;
    const int drop = static_cast<int>(
        noise.driftLevelsPerOp * static_cast<double>(age) *
        driftSusceptibility(idx, epoch));
    return std::max(0, level - drop);
}

double
CrossbarArray::driftSusceptibility(std::size_t idx,
                                   std::uint64_t epoch) const
{
    if (epoch == 0)
        return ensureSusceptibility()[idx];
    Rng rng(driftSeed +
            0x9E3779B97F4A7C15ull * (idx * 0x1000193ull + epoch + 1));
    return rng.uniform01();
}

const double *
CrossbarArray::ensureSusceptibility() const
{
    if (!_susceptValid.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(_planesMutex);
        if (!_susceptValid.load(std::memory_order_relaxed)) {
            _suscept.resize(cells.size());
            for (std::size_t idx = 0; idx < cells.size(); ++idx) {
                Rng rng(driftSeed +
                        0x9E3779B97F4A7C15ull *
                            (idx * 0x1000193ull + 1));
                _suscept[idx] = rng.uniform01();
            }
            _susceptValid.store(true, std::memory_order_release);
        }
    }
    return _suscept.data();
}

Acc
CrossbarArray::driftedBitlineSum(int col, std::span<const int> inputs,
                                 std::uint64_t t) const
{
    Acc sum = 0;
    for (std::size_t r = 0; r < inputs.size(); ++r) {
        sum += static_cast<Acc>(inputs[r]) *
            driftedLevel(r * _cols + static_cast<std::size_t>(col), t);
    }
    return sum;
}

int
CrossbarArray::effectiveLevel(int row, int col, std::uint64_t t) const
{
    if (row < 0 || row >= _rows || col < 0 || col >= _cols)
        fatal("CrossbarArray::effectiveLevel: index out of range");
    const std::size_t idx =
        static_cast<std::size_t>(row) * _cols + col;
    return noise.driftEnabled() ? driftedLevel(idx, t) : cells[idx];
}

Acc
CrossbarArray::applyReadNoise(Acc sum, std::uint64_t seq,
                              int col) const
{
    // One Gaussian draw from an Rng seeded purely by
    // (seed, seq, col): reproducible under any thread interleaving.
    Rng rng(noise.seed +
            0x9E3779B97F4A7C15ull *
                (seq * 131071ull + static_cast<std::uint64_t>(col) +
                 1ull));
    const double jitter = rng.gaussian() * noise.sigmaLsb;
    sum += static_cast<Acc>(std::llround(jitter));
    return sum < 0 ? 0 : sum;
}

Acc
CrossbarArray::readBitline(int col, std::span<const int> inputs) const
{
    if (col < 0 || col >= _cols)
        fatal("CrossbarArray::readBitline: column out of range");
    if (static_cast<int>(inputs.size()) > _rows)
        fatal("CrossbarArray::readBitline: more inputs than rows");
    if (!noise.readNoiseEnabled() && !noise.driftEnabled())
        return bitlineSum(col, inputs);
    const std::uint64_t seq =
        _noiseSeq.fetch_add(1, std::memory_order_relaxed);
    Acc sum = noise.driftEnabled()
        ? driftedBitlineSum(col, inputs, seq)
        : bitlineSum(col, inputs);
    if (noise.readNoiseEnabled())
        sum = applyReadNoise(sum, seq, col);
    return sum;
}

std::vector<Acc>
CrossbarArray::readAllBitlines(std::span<const int> inputs) const
{
    return readAllBitlines(
        inputs, _noiseSeq.fetch_add(1, std::memory_order_relaxed));
}

std::vector<Acc>
CrossbarArray::readAllBitlines(std::span<const int> inputs,
                               std::uint64_t noiseSeq) const
{
    return readAllBitlines(inputs, noiseSeq, noiseSeq);
}

std::vector<Acc>
CrossbarArray::readAllBitlines(std::span<const int> inputs,
                               std::uint64_t noiseSeq,
                               std::uint64_t driftTime) const
{
    std::vector<Acc> out;
    readAllBitlinesInto(inputs, noiseSeq, driftTime, out);
    return out;
}

void
CrossbarArray::readAllBitlinesInto(std::span<const int> inputs,
                                   std::uint64_t noiseSeq,
                                   std::uint64_t driftTime,
                                   std::vector<Acc> &out) const
{
    if (static_cast<int>(inputs.size()) > _rows)
        fatal("CrossbarArray::readAllBitlines: more inputs than rows");
    _readCycles.fetch_add(1, std::memory_order_relaxed);
    out.resize(static_cast<std::size_t>(_cols));
    const bool noisy = noise.readNoiseEnabled();
    const bool drifty = noise.driftEnabled();
    for (int c = 0; c < _cols; ++c) {
        Acc sum = drifty ? driftedBitlineSum(c, inputs, driftTime)
                         : bitlineSum(c, inputs);
        if (noisy)
            sum = applyReadNoise(sum, noiseSeq, c);
        out[static_cast<std::size_t>(c)] = sum;
    }
}

const std::uint64_t *
CrossbarArray::ensurePlanes() const
{
    if (!_planesValid.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(_planesMutex);
        if (!_planesValid.load(std::memory_order_relaxed)) {
            const int words = planeWords();
            _planes.assign(static_cast<std::size_t>(_cols) *
                               _cellBits * words,
                           0);
            for (int r = 0; r < _rows; ++r) {
                const std::uint64_t bit = std::uint64_t{1}
                    << (r % 64);
                const int word = r / 64;
                for (int c = 0; c < _cols; ++c) {
                    const int level =
                        cells[static_cast<std::size_t>(r) * _cols +
                              c];
                    if (!level)
                        continue;
                    for (int b = 0; b < _cellBits; ++b) {
                        if ((level >> b) & 1) {
                            _planes[static_cast<std::size_t>(
                                        c * _cellBits + b) *
                                        words +
                                    word] |= bit;
                        }
                    }
                }
            }
            _planesValid.store(true, std::memory_order_release);
        }
    }
    return _planes.data();
}

void
CrossbarArray::readAllBitlinesPacked(
    std::span<const std::uint64_t> digitPlanes, int digitBits,
    std::vector<Acc> &out) const
{
    const int words = planeWords();
    if (digitBits < 1 ||
        digitPlanes.size() !=
            static_cast<std::size_t>(digitBits) * words) {
        fatal("CrossbarArray::readAllBitlinesPacked: digit-plane "
              "span does not match the array geometry");
    }
    if (!packedReadExact()) {
        fatal("CrossbarArray::readAllBitlinesPacked: array has read "
              "noise or drift configured; use readAllBitlines");
    }
    const std::uint64_t *planes = ensurePlanes();
    _readCycles.fetch_add(1, std::memory_order_relaxed);
    out.resize(static_cast<std::size_t>(_cols));
    // One digit vector is the n == 1 degenerate case of the batched
    // GEMM; going through the dispatcher means a host with POPCNT
    // gets the hardware instruction even though this TU is compiled
    // for baseline x86-64.
    kernel::batchedBitlineSums(planes, _cols, _cellBits, words,
                               digitPlanes.data(), digitBits, 1,
                               out.data());
}

void
CrossbarArray::readAllBitlinesPackedBatch(
    std::span<const std::uint64_t> digitPlanes, int digitBits, int n,
    std::vector<Acc> &out) const
{
    const int words = planeWords();
    if (digitBits < 1 || n < 1 ||
        digitPlanes.size() != static_cast<std::size_t>(digitBits) *
            words * n) {
        fatal("CrossbarArray::readAllBitlinesPackedBatch: digit-plane "
              "matrix does not match the array geometry");
    }
    if (!packedReadExact()) {
        fatal("CrossbarArray::readAllBitlinesPackedBatch: array has "
              "read noise or drift configured; use readAllBitlines");
    }
    const std::uint64_t *planes = ensurePlanes();
    out.resize(static_cast<std::size_t>(_cols) * n);
    kernel::batchedBitlineSums(planes, _cols, _cellBits, words,
                               digitPlanes.data(), digitBits, n,
                               out.data());
}

Acc
CrossbarArray::maxPackedReading(int digitBits) const
{
    // A packed reading of column c is
    //   sum_j 2^j * sum_r level(r, c) * digitBit(j, r)
    // so with every digit bit set it peaks at the column's level sum
    // times (2^digitBits - 1). Column-strided walk over the stored
    // levels; callers evaluate this once per tile block, not per
    // read.
    Acc best = 0;
    for (int c = 0; c < _cols; ++c) {
        Acc sum = 0;
        for (int r = 0; r < _rows; ++r) {
            sum += cells[static_cast<std::size_t>(r) * _cols +
                         static_cast<std::size_t>(c)];
        }
        best = std::max(best, sum);
    }
    return best * ((Acc{1} << digitBits) - 1);
}

void
CrossbarArray::setNoise(const NoiseSpec &spec,
                        std::uint64_t instanceSalt)
{
    if (spec.maxProgramPulses < 1)
        fatal("NoiseSpec: maxProgramPulses must be >= 1");
    invalidatePlanes(); // the fault map below may snap cells
    _susceptValid.store(false, std::memory_order_relaxed);
    noise = spec;
    // The salt mix keeps salt = 0 on the historical streams.
    const std::uint64_t salted =
        spec.seed ^ (0x9E3779B97F4A7C15ull * instanceSalt);
    writeRng = Rng(salted ^ 0xD1CEull);
    driftSeed = salted ^ 0xD21F7ull;
    _noiseSeq.store(0, std::memory_order_relaxed);

    // (Re)draw the stuck-cell map from a dedicated stream.
    std::fill(stuckLevel.begin(), stuckLevel.end(), -1);
    if (noise.faultsEnabled()) {
        Rng faultRng(salted ^ 0xFA417ull);
        for (auto &s : stuckLevel) {
            if (faultRng.uniform01() < noise.stuckAtFraction) {
                switch (noise.stuckMode) {
                case StuckMode::RandomLevel:
                    s = static_cast<int>(
                        faultRng.uniform(0, maxLevel()));
                    break;
                case StuckMode::On:
                    s = maxLevel();
                    break;
                case StuckMode::Off:
                    s = 0;
                    break;
                }
            }
        }
        // Cells programmed before the fault map was drawn snap to
        // their frozen levels.
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (stuckLevel[i] >= 0)
                cells[i] = stuckLevel[i];
    }
}

void
CrossbarArray::forceStuck(int row, int col, int level)
{
    if (row < 0 || row >= _rows || col < 0 || col >= _cols)
        fatal("CrossbarArray::forceStuck: cell index out of range");
    if (level > maxLevel())
        fatal("CrossbarArray::forceStuck: level exceeds precision");
    const std::size_t idx =
        static_cast<std::size_t>(row) * _cols + col;
    stuckLevel[idx] = level < 0 ? -1 : level;
    if (level >= 0) {
        cells[idx] = level;
        invalidatePlanes();
    }
}

int
CrossbarArray::stuckCells() const
{
    int count = 0;
    for (int s : stuckLevel)
        count += s >= 0;
    return count;
}

void
CrossbarArray::resetStats()
{
    _readCycles.store(0, std::memory_order_relaxed);
    _noiseSeq.store(0, std::memory_order_relaxed);
}

std::int64_t
CrossbarArray::programmedCells() const
{
    std::int64_t count = 0;
    for (int level : cells)
        count += level != 0;
    return count;
}

} // namespace isaac::xbar
