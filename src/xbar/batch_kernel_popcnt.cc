/**
 * @file
 * POPCNT tier of the batched popcount GEMM: the portable skeleton
 * compiled with -mpopcnt (CMake source property on this file only),
 * so every std::popcount lowers to the hardware instruction instead
 * of the libgcc table walk. Reached only through the dispatcher after
 * CPUID confirms POPCNT support.
 */

#include "xbar/batch_kernel.h"
#include "xbar/batch_kernel_impl.h"

namespace isaac::xbar::kernel {

void
batchedBitlineSumsPopcnt(const std::uint64_t *cellPlanes, int cols,
                         int cellBits, int words,
                         const std::uint64_t *dig, int digitBits,
                         int n, Acc *out)
{
    detail::batchedBitlineSumsImpl(cellPlanes, cols, cellBits, words,
                                   dig, digitBits, n, out,
                                   detail::ScalarAccumRow{});
}

} // namespace isaac::xbar::kernel
