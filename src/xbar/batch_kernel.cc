/**
 * @file
 * Runtime CPU dispatch for the batched popcount GEMM, plus the
 * always-available scalar tier. This translation unit is compiled
 * with *no* ISA flags — it must run on baseline x86-64 (and non-x86
 * hosts) up to and including the CPUID probe — so the vector tiers
 * live in their own TUs (batch_kernel_{popcnt,avx2,avx512}.cc) and
 * are referenced here only when CMake compiled them (the
 * ISAAC_KERNEL_* definitions mirror the source properties).
 */

#include "xbar/batch_kernel.h"

#include <atomic>

#include "common/logging.h"
#include "xbar/batch_kernel_impl.h"

namespace isaac::xbar::kernel {

namespace {

void
batchedBitlineSumsScalar(const std::uint64_t *cellPlanes, int cols,
                         int cellBits, int words,
                         const std::uint64_t *dig, int digitBits,
                         int n, Acc *out)
{
    detail::batchedBitlineSumsImpl(cellPlanes, cols, cellBits, words,
                                   dig, digitBits, n, out,
                                   detail::ScalarAccumRow{});
}

Tier
detectHostTier()
{
    Tier best = Tier::Scalar;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#ifdef ISAAC_KERNEL_POPCNT
    if (__builtin_cpu_supports("popcnt"))
        best = Tier::Popcnt;
#endif
#ifdef ISAAC_KERNEL_AVX2
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("popcnt"))
        best = Tier::Avx2;
#endif
#ifdef ISAAC_KERNEL_AVX512
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vpopcntdq") &&
        __builtin_cpu_supports("popcnt"))
        best = Tier::Avx512;
#endif
#endif
    return best;
}

/** -1 = no override, else the forced tier. */
std::atomic<int> tierOverride{-1};

} // namespace

const char *
tierName(Tier t)
{
    switch (t) {
    case Tier::Scalar: return "scalar";
    case Tier::Popcnt: return "popcnt";
    case Tier::Avx2: return "avx2";
    case Tier::Avx512: return "avx512";
    }
    return "unknown";
}

Tier
detectedTier()
{
    static const Tier t = detectHostTier();
    return t;
}

Tier
activeTier()
{
    const int o = tierOverride.load(std::memory_order_relaxed);
    return o < 0 ? detectedTier() : static_cast<Tier>(o);
}

void
forceTier(Tier t)
{
    if (t > detectedTier()) {
        fatal(std::string("kernel::forceTier: tier '") + tierName(t) +
              "' is not available on this host (detected '" +
              tierName(detectedTier()) + "')");
    }
    tierOverride.store(static_cast<int>(t),
                       std::memory_order_relaxed);
}

void
resetTierOverride()
{
    tierOverride.store(-1, std::memory_order_relaxed);
}

void
batchedBitlineSums(const std::uint64_t *cellPlanes, int cols,
                   int cellBits, int words, const std::uint64_t *dig,
                   int digitBits, int n, Acc *out)
{
    switch (activeTier()) {
#ifdef ISAAC_KERNEL_AVX512
    case Tier::Avx512:
        batchedBitlineSumsAvx512(cellPlanes, cols, cellBits, words,
                                 dig, digitBits, n, out);
        return;
#endif
#ifdef ISAAC_KERNEL_AVX2
    case Tier::Avx2:
        batchedBitlineSumsAvx2(cellPlanes, cols, cellBits, words, dig,
                               digitBits, n, out);
        return;
#endif
#ifdef ISAAC_KERNEL_POPCNT
    case Tier::Popcnt:
        batchedBitlineSumsPopcnt(cellPlanes, cols, cellBits, words,
                                 dig, digitBits, n, out);
        return;
#endif
    default:
        batchedBitlineSumsScalar(cellPlanes, cols, cellBits, words,
                                 dig, digitBits, n, out);
        return;
    }
}

void
scaleAdd(Acc *acc, const Acc *row, int shift, bool negate, int n)
{
    switch (activeTier()) {
#ifdef ISAAC_KERNEL_AVX512
    case Tier::Avx512:
        scaleAddAvx512(acc, row, shift, negate, n);
        return;
#endif
#ifdef ISAAC_KERNEL_AVX2
    case Tier::Avx2:
        scaleAddAvx2(acc, row, shift, negate, n);
        return;
#endif
    default:
        // The popcnt tier has no vector ISA to exploit in a
        // shift/add loop; it shares the baseline body.
        detail::scaleAddImpl(acc, row, shift, negate, n);
        return;
    }
}

void
scaleAddFlipped(Acc *acc, const Acc *row, const Acc *units,
                int cellBits, int shift, bool negate, int n)
{
    switch (activeTier()) {
#ifdef ISAAC_KERNEL_AVX512
    case Tier::Avx512:
        scaleAddFlippedAvx512(acc, row, units, cellBits, shift,
                              negate, n);
        return;
#endif
#ifdef ISAAC_KERNEL_AVX2
    case Tier::Avx2:
        scaleAddFlippedAvx2(acc, row, units, cellBits, shift, negate,
                            n);
        return;
#endif
    default:
        detail::scaleAddFlippedImpl(acc, row, units, cellBits, shift,
                                    negate, n);
        return;
    }
}

} // namespace isaac::xbar::kernel
