#include "xbar/write_model.h"

#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace isaac::xbar {

double
WriteModel::arraySeconds(const arch::IsaacConfig &cfg) const
{
    if (pulseNs <= 0 || pulsesPerCell <= 0 || rowsPerWrite < 1)
        fatal("WriteModel: parameters must be positive");
    const double rowWrites = static_cast<double>(
        ceilDiv(cfg.engine.rows, rowsPerWrite));
    return rowWrites * pulsesPerCell * pulseNs * 1e-9;
}

double
WriteModel::cellsEnergyJ(std::int64_t cells) const
{
    return static_cast<double>(cells) * pulsesPerCell *
        pulseEnergyPj * 1e-12;
}

double
WriteModel::pulsesSeconds(std::int64_t pulses) const
{
    if (pulseNs <= 0)
        fatal("WriteModel: parameters must be positive");
    return static_cast<double>(pulses) * pulseNs * 1e-9;
}

double
WriteModel::pulsesEnergyJ(std::int64_t pulses) const
{
    return static_cast<double>(pulses) * pulseEnergyPj * 1e-12;
}

double
WriteModel::measuredPulsesPerCell(std::int64_t pulses,
                                  std::int64_t cells) const
{
    if (cells <= 0)
        return pulsesPerCell;
    return static_cast<double>(pulses) / static_cast<double>(cells);
}

double
WriteModel::programSeconds(const arch::IsaacConfig &cfg,
                           std::int64_t xbars, int chips) const
{
    if (chips < 1)
        fatal("WriteModel: need at least one chip");
    // All IMAs program concurrently; each IMA's write driver(s)
    // serialize the IMA's arrays.
    const std::int64_t imas = static_cast<std::int64_t>(chips) *
        cfg.tilesPerChip * cfg.imasPerTile;
    const std::int64_t arraysPerIma = ceilDiv(xbars, imas);
    const std::int64_t rounds =
        ceilDiv(arraysPerIma, std::max(1, arraysPerImaParallel));
    return static_cast<double>(rounds) * arraySeconds(cfg);
}

double
WriteModel::programEnergyJ(const arch::IsaacConfig &cfg,
                           std::int64_t xbars) const
{
    const std::int64_t cells = xbars *
        static_cast<std::int64_t>(cfg.engine.rows) *
        (cfg.engine.cols + 1);
    return cellsEnergyJ(cells);
}

} // namespace isaac::xbar
