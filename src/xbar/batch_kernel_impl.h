/**
 * @file
 * Shared skeleton of the batched popcount GEMM, instantiated once per
 * instruction-set tier. Each tier translation unit supplies only the
 * innermost accumulation row as a functor,
 *
 *   accumRow(Acc *dst, const uint64_t *dp, uint64_t pw, int shift, n)
 *     : dst[i] += popcount(dp[i] & pw) << shift   for i in [0, n),
 *
 * and everything else — loop structure, zero-plane skipping, the
 * register-resident n == 1 special cases — is this template. Keeping
 * the skeleton in one place is what makes the tiers bit-exact by
 * construction: they can only differ in how a row of popcounts is
 * computed, never in what is summed.
 *
 * The n == 1 cases are plain scalar code on purpose: a single digit
 * vector has no lane parallelism to exploit, and compiling this
 * header inside a tier TU means std::popcount lowers to that tier's
 * best instruction (hardware POPCNT from the popcnt tier up).
 */

#ifndef ISAAC_XBAR_BATCH_KERNEL_IMPL_H
#define ISAAC_XBAR_BATCH_KERNEL_IMPL_H

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/types.h"

namespace isaac::xbar::kernel::detail {

template <typename AccumRow>
inline void
batchedBitlineSumsImpl(const std::uint64_t *cellPlanes, int cols,
                       int cellBits, int words,
                       const std::uint64_t *dig, int digitBits, int n,
                       Acc *out, AccumRow accumRow)
{
    // Single-vector reads dominate the unbatched fast path (one call
    // per tile-phase attempt); keep the digit words in registers
    // across the whole column sweep for the common 1-bit-DAC shapes.
    if (n == 1 && digitBits == 1 && words == 1) {
        const std::uint64_t d0 = dig[0];
        const std::uint64_t *cellPlane = cellPlanes;
        for (int c = 0; c < cols; ++c) {
            Acc sum = 0;
            for (int b = 0; b < cellBits; ++b, ++cellPlane)
                sum += static_cast<Acc>(
                           std::popcount(d0 & cellPlane[0]))
                    << b;
            out[static_cast<std::size_t>(c)] = sum;
        }
        return;
    }
    if (n == 1 && digitBits == 1 && words == 2) {
        const std::uint64_t d0 = dig[0];
        const std::uint64_t d1 = dig[1];
        const std::uint64_t *cellPlane = cellPlanes;
        for (int c = 0; c < cols; ++c) {
            Acc sum = 0;
            for (int b = 0; b < cellBits; ++b, cellPlane += 2)
                sum += static_cast<Acc>(
                           std::popcount(d0 & cellPlane[0]) +
                           std::popcount(d1 & cellPlane[1]))
                    << b;
            out[static_cast<std::size_t>(c)] = sum;
        }
        return;
    }

    // General batched shape: per column, stream each (cell bit, digit
    // bit, plane word) term across the whole window row. The cell
    // word is one broadcast operand; the window row dst/dp are
    // contiguous, which is the layout accumRow vectorizes over. A
    // zero cell word contributes nothing at any input — skip it (flip
    // encoding makes all-zero high planes common).
    for (int c = 0; c < cols; ++c) {
        const std::uint64_t *cp = cellPlanes +
            static_cast<std::size_t>(c) * cellBits * words;
        Acc *dst = out + static_cast<std::size_t>(c) * n;
        std::fill(dst, dst + n, Acc{0});
        for (int b = 0; b < cellBits; ++b) {
            for (int j = 0; j < digitBits; ++j) {
                for (int w = 0; w < words; ++w) {
                    const std::uint64_t pw =
                        cp[static_cast<std::size_t>(b) * words + w];
                    if (!pw)
                        continue;
                    accumRow(dst,
                             dig +
                                 (static_cast<std::size_t>(j) * words +
                                  w) *
                                     n,
                             pw, b + j, n);
                }
            }
        }
    }
}

/**
 * Portable bodies of the digital-merge rows (scaleAdd /
 * scaleAddFlipped in batch_kernel.h): the scalar/popcnt tiers run
 * these whole, the vector tiers only for the sub-vector tail. Pure
 * shift/add loops over the contiguous window index — every
 * multiplier in the engine's merge (slice weight 2^(s*w), phase
 * weight 2^(p*v), the 2^15 weight bias, the slice ceiling 2^w - 1)
 * is a power of two, which is what makes the vector tiers trivially
 * bit-exact: 64-bit shift/add/sub has exactly one answer.
 */
inline void
scaleAddImpl(Acc *acc, const Acc *row, int shift, bool negate, int n)
{
    if (negate) {
        for (int i = 0; i < n; ++i)
            acc[i] -= row[i] << shift;
    } else {
        for (int i = 0; i < n; ++i)
            acc[i] += row[i] << shift;
    }
}

inline void
scaleAddFlippedImpl(Acc *acc, const Acc *row, const Acc *units,
                    int cellBits, int shift, bool negate, int n)
{
    // Unflipped slice value: (2^w - 1) * unit - v, the linear form
    // of encoding.cc's unflipColumnSum.
    if (negate) {
        for (int i = 0; i < n; ++i) {
            acc[i] -=
                ((units[i] << cellBits) - units[i] - row[i]) << shift;
        }
    } else {
        for (int i = 0; i < n; ++i) {
            acc[i] +=
                ((units[i] << cellBits) - units[i] - row[i]) << shift;
        }
    }
}

/** The portable accumulation row (scalar and popcnt tiers). */
struct ScalarAccumRow
{
    void
    operator()(Acc *dst, const std::uint64_t *dp, std::uint64_t pw,
               int shift, int n) const
    {
        for (int i = 0; i < n; ++i) {
            dst[i] += static_cast<Acc>(std::popcount(dp[i] & pw))
                << shift;
        }
    }
};

} // namespace isaac::xbar::kernel::detail

#endif // ISAAC_XBAR_BATCH_KERNEL_IMPL_H
