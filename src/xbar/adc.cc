#include "xbar/adc.h"

#include "common/bits.h"
#include "common/logging.h"

namespace isaac::xbar {

int
adcResolution(int rows, int v, int w, bool encoded)
{
    if (rows < 1 || v < 1 || w < 1)
        fatal("adcResolution: rows, v, w must be positive");
    int bits = log2Ceil(static_cast<std::uint64_t>(rows)) + v + w;
    if (!(v > 1 && w > 1))
        bits -= 1; // Eq. (2)
    if (encoded)
        bits -= 1; // flipped-column guarantee: MSB is always 0
    return bits;
}

Adc::Adc(int bits) : _bits(bits)
{
    if (bits < 1 || bits > 24)
        fatal("Adc: resolution out of supported range [1, 24]");
}

Acc
Adc::convert(Acc level) const
{
    ++_samples;
    if (level < 0) {
        ++_clips;
        return 0;
    }
    if (level > maxCode()) {
        ++_clips;
        return maxCode();
    }
    return level;
}

void
Adc::resetStats()
{
    _samples = 0;
    _clips = 0;
}

} // namespace isaac::xbar
