#include "xbar/adc.h"

#include "common/bits.h"
#include "common/logging.h"

namespace isaac::xbar {

int
adcResolution(int rows, int v, int w, bool encoded)
{
    if (rows < 1 || v < 1 || w < 1)
        fatal("adcResolution: rows, v, w must be positive");
    int bits = log2Ceil(static_cast<std::uint64_t>(rows)) + v + w;
    if (!(v > 1 && w > 1))
        bits -= 1; // Eq. (2)
    if (encoded)
        bits -= 1; // flipped-column guarantee: MSB is always 0
    return bits;
}

Adc::Adc(int bits, bool noisy) : _bits(bits), _noisy(noisy)
{
    if (bits < 1 || bits > 24)
        fatal("Adc: resolution out of supported range [1, 24]");
}

void
Adc::negativePanic(Acc level) const
{
    panic("Adc: negative bitline sum " + std::to_string(level) +
          " with noise disabled (encoding invariant violated)");
}

Acc
Adc::convert(Acc level) const
{
    AdcTally tally;
    const Acc code = quantize(level, tally);
    addTally(tally);
    return code;
}

void
Adc::addTally(const AdcTally &tally) const
{
    _samples.fetch_add(tally.samples, std::memory_order_relaxed);
    _clips.fetch_add(tally.clips, std::memory_order_relaxed);
    _bitCycles.fetch_add(tally.bitCycles, std::memory_order_relaxed);
}

void
Adc::resetStats()
{
    _samples.store(0, std::memory_order_relaxed);
    _clips.store(0, std::memory_order_relaxed);
    _bitCycles.store(0, std::memory_order_relaxed);
}

} // namespace isaac::xbar
