/**
 * @file
 * Data-encoding schemes of Section V.
 *
 * Three cooperating encodings make signed 16-bit arithmetic work on
 * a current-summing bitline while keeping the ADC small:
 *
 *  1. *Weight bias*: a signed 16-bit weight W is stored as the
 *     unsigned U = W + 2^15 (like the IEEE-754 exponent bias). The
 *     bias is removed at the end by subtracting 2^15 times the sum of
 *     the inputs, which the unit column provides.
 *
 *  2. *Weight slicing*: U is split into 16/w w-bit digits placed in
 *     adjacent columns (little-endian); column results merge with
 *     shifts and adds.
 *
 *  3. *Column flipping*: a column whose cells sum to more than half
 *     the maximum stores the flipped form W' = 2^w - 1 - W, which
 *     guarantees the bitline MSB is 0 and saves one ADC bit. The
 *     original value is recovered as (2^w-1) * sum(a_i) - flipped.
 */

#ifndef ISAAC_XBAR_ENCODING_H
#define ISAAC_XBAR_ENCODING_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace isaac::xbar {

/** The weight bias: 2^15 for the 16-bit data path. */
constexpr Acc kWeightBias = Acc{1} << 15;

/** Bias a signed weight into its unsigned stored form. */
std::uint16_t biasWeight(Word w);

/** Invert the bias. */
Word unbiasWeight(std::uint16_t u);

/**
 * Slice a biased weight into 16/w w-bit digits, least significant
 * digit first. `cellBits` must divide 16.
 */
std::vector<int> sliceWeight(std::uint16_t u, int cellBits);

/** Reassemble sliced digits (verification helper). */
std::uint16_t unsliceWeight(std::span<const int> digits, int cellBits);

/**
 * Decide whether a column should be stored flipped: flip when the
 * cell-level sum exceeds half the column maximum, so that any input
 * pattern yields a bitline current <= usedRows * (2^w - 1) / 2.
 *
 * @param levels    the unflipped cell levels of the used rows
 * @param cellBits  w
 */
bool shouldFlipColumn(std::span<const int> levels, int cellBits);

/** Flip one cell level: W' = 2^w - 1 - W. */
int flipLevel(int level, int cellBits);

/**
 * Recover the true column sum-of-products from a flipped column's
 * ADC reading.
 *
 * @param flippedSum  ADC output of the flipped column
 * @param unitSum     ADC output of the unit column (= sum of inputs)
 * @param usedRows    rows participating in the dot product
 * @param cellBits    w
 */
Acc unflipColumnSum(Acc flippedSum, Acc unitSum, int cellBits);

/**
 * Worst-case bitline current of an encoded column with R used rows,
 * v-bit inputs, and w-bit cells: the bound the flip guarantee
 * enforces (used by tests and by the ADC-range assertions).
 */
Acc encodedColumnCeiling(int usedRows, int v, int w);

} // namespace isaac::xbar

#endif // ISAAC_XBAR_ENCODING_H
