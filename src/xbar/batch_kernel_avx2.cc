/**
 * @file
 * AVX2 tier of the batched popcount GEMM. AVX2 has no vector
 * popcount, so the accumulation row uses the vpshufb nibble-LUT
 * algorithm (Mula): split each byte into nibbles, look both up in an
 * in-register 16-entry bit-count table, and horizontally sum bytes
 * per 64-bit lane with vpsadbw. Four windows' words are processed per
 * iteration; the sub-vector tail falls back to hardware POPCNT.
 *
 * Compiled with -mavx2 -mpopcnt via a CMake source property on this
 * file only; reached only through the dispatcher after CPUID confirms
 * AVX2 + POPCNT.
 */

#include "xbar/batch_kernel.h"

#include <immintrin.h>

#include "xbar/batch_kernel_impl.h"

namespace isaac::xbar::kernel {

namespace {

/** Per-64-bit-lane popcount of four uint64 lanes. */
inline __m256i
popcount64x4(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                        _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

struct Avx2AccumRow
{
    void
    operator()(Acc *dst, const std::uint64_t *dp, std::uint64_t pw,
               int shift, int n) const
    {
        const __m256i bc =
            _mm256_set1_epi64x(static_cast<long long>(pw));
        const __m128i sh = _mm_cvtsi32_si128(shift);
        int i = 0;
        for (; i + 4 <= n; i += 4) {
            const __m256i d = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(dp + i));
            const __m256i cnt =
                popcount64x4(_mm256_and_si256(d, bc));
            __m256i acc = _mm256_loadu_si256(
                reinterpret_cast<__m256i *>(dst + i));
            acc = _mm256_add_epi64(acc, _mm256_sll_epi64(cnt, sh));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                                acc);
        }
        for (; i < n; ++i) {
            dst[i] += static_cast<Acc>(std::popcount(dp[i] & pw))
                << shift;
        }
    }
};

} // namespace

void
batchedBitlineSumsAvx2(const std::uint64_t *cellPlanes, int cols,
                       int cellBits, int words,
                       const std::uint64_t *dig, int digitBits, int n,
                       Acc *out)
{
    detail::batchedBitlineSumsImpl(cellPlanes, cols, cellBits, words,
                                   dig, digitBits, n, out,
                                   Avx2AccumRow{});
}

void
scaleAddAvx2(Acc *acc, const Acc *row, int shift, bool negate, int n)
{
    const __m128i sh = _mm_cvtsi32_si128(shift);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + i));
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        const __m256i t = _mm256_sll_epi64(r, sh);
        a = negate ? _mm256_sub_epi64(a, t)
                   : _mm256_add_epi64(a, t);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + i), a);
    }
    if (i < n)
        detail::scaleAddImpl(acc + i, row + i, shift, negate, n - i);
}

void
scaleAddFlippedAvx2(Acc *acc, const Acc *row, const Acc *units,
                    int cellBits, int shift, bool negate, int n)
{
    const __m128i cb = _mm_cvtsi32_si128(cellBits);
    const __m128i sh = _mm_cvtsi32_si128(shift);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i u = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(units + i));
        const __m256i r = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + i));
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        // ((u << w) - u - v) << shift: the unflipped slice value.
        __m256i t = _mm256_sub_epi64(
            _mm256_sub_epi64(_mm256_sll_epi64(u, cb), u), r);
        t = _mm256_sll_epi64(t, sh);
        a = negate ? _mm256_sub_epi64(a, t)
                   : _mm256_add_epi64(a, t);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + i), a);
    }
    if (i < n) {
        detail::scaleAddFlippedImpl(acc + i, row + i, units + i,
                                    cellBits, shift, negate, n - i);
    }
}

} // namespace isaac::xbar::kernel
