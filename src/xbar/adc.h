/**
 * @file
 * ADC resolution law and quantizer.
 *
 * Section V relates the ADC resolution A to the crossbar geometry:
 *
 *     A = log2(R) + v + w      if v > 1 and w > 1        (Eq. 1)
 *     A = log2(R) + v + w - 1  otherwise                 (Eq. 2)
 *
 * and the flipped-column encoding guarantees the sum-of-products MSB
 * is 0, saving one further bit. For the default ISAAC design point
 * (R=128, v=1, w=2, encoded) this yields the 8-bit ADC of Table I.
 */

#ifndef ISAAC_XBAR_ADC_H
#define ISAAC_XBAR_ADC_H

#include "common/types.h"

namespace isaac::xbar {

/**
 * ADC resolution required for an R-row crossbar with v-bit inputs and
 * w-bit cells; `encoded` applies the one-bit saving of the
 * flipped-column scheme.
 */
int adcResolution(int rows, int v, int w, bool encoded);

/**
 * An A-bit ADC sampling non-negative bitline currents. Values inside
 * [0, 2^bits - 1] convert exactly (the bitline sum is a discrete
 * quantity); out-of-range values clip, which the encoding scheme is
 * designed to prevent and tests assert never happens in normal
 * operation.
 */
class Adc
{
  public:
    explicit Adc(int bits);

    /** Convert one sampled current; clips to the ADC range. */
    Acc convert(Acc level) const;

    int bits() const { return _bits; }

    /** Largest representable code. */
    Acc maxCode() const { return (Acc{1} << _bits) - 1; }

    /** Number of conversions performed (energy accounting). */
    std::uint64_t samples() const { return _samples; }

    /** Number of conversions that clipped (should stay 0). */
    std::uint64_t clips() const { return _clips; }

    void resetStats();

  private:
    int _bits;
    mutable std::uint64_t _samples = 0;
    mutable std::uint64_t _clips = 0;
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_ADC_H
