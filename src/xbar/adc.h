/**
 * @file
 * ADC resolution law and quantizer.
 *
 * Section V relates the ADC resolution A to the crossbar geometry:
 *
 *     A = log2(R) + v + w      if v > 1 and w > 1        (Eq. 1)
 *     A = log2(R) + v + w - 1  otherwise                 (Eq. 2)
 *
 * and the flipped-column encoding guarantees the sum-of-products MSB
 * is 0, saving one further bit. For the default ISAAC design point
 * (R=128, v=1, w=2, encoded) this yields the 8-bit ADC of Table I.
 */

#ifndef ISAAC_XBAR_ADC_H
#define ISAAC_XBAR_ADC_H

#include <atomic>

#include "common/types.h"

namespace isaac::xbar {

/**
 * ADC resolution required for an R-row crossbar with v-bit inputs and
 * w-bit cells; `encoded` applies the one-bit saving of the
 * flipped-column scheme.
 */
int adcResolution(int rows, int v, int w, bool encoded);

/** Per-call conversion counters (merged into an Adc with addTally). */
struct AdcTally
{
    std::uint64_t samples = 0;
    std::uint64_t clips = 0;
    /**
     * SAR comparator cycles spent across the samples: a fixed-policy
     * conversion costs bits() cycles, an adaptive one only the
     * resolution its cycle bound required (xbar/adc_policy.h). The
     * per-cycle energy accounting for adaptive converters divides
     * this by samples to price the realized mean resolution.
     */
    std::uint64_t bitCycles = 0;

    void
    merge(const AdcTally &o)
    {
        samples += o.samples;
        clips += o.clips;
        bitCycles += o.bitCycles;
    }

    bool operator==(const AdcTally &) const = default;
};

/**
 * An A-bit ADC sampling non-negative bitline currents. Values inside
 * [0, 2^bits - 1] convert exactly (the bitline sum is a discrete
 * quantity); larger values clip, which the encoding scheme is
 * designed to prevent and tests assert never happens in normal
 * operation.
 *
 * A negative level can never come off a physical bitline (inputs and
 * conductances are non-negative, and read noise clamps at zero), so
 * a clean-mode ADC treats one as an encoding bug and panics. Only an
 * ADC constructed with `noisy = true` clips negatives to 0 (and
 * counts the clip), mirroring a saturating front end.
 *
 * Thread safety: quantize() only touches the caller's tally; the
 * internal counters behind convert()/addTally() are atomic. Any mix
 * of const calls from multiple threads is race-free.
 */
class Adc
{
  public:
    explicit Adc(int bits, bool noisy = false);

    /** Convert one sampled current, counting into internal tallies. */
    Acc convert(Acc level) const;

    /**
     * Convert one sampled current, counting into `tally` instead of
     * the internal counters (lets parallel callers batch updates).
     * Inline: the engine calls this once per column per phase, so it
     * sits on the dot-product hot path.
     */
    Acc
    quantize(Acc level, AdcTally &tally) const
    {
        return quantizeAt(level, _bits, tally);
    }

    /**
     * Convert at a per-conversion resolution of `bits` <= bits():
     * the adaptive policy's truncated SAR conversion. The code
     * ceiling shrinks with the resolution, so a reading beyond the
     * certified cycle bound clips deterministically (counted); a
     * conversion at the full resolution is exactly quantize().
     * Charges `bits` comparator cycles either way.
     */
    Acc
    quantizeAt(Acc level, int bits, AdcTally &tally) const
    {
        ++tally.samples;
        tally.bitCycles += static_cast<std::uint64_t>(bits);
        if (level < 0) [[unlikely]] {
            if (!_noisy)
                negativePanic(level);
            ++tally.clips;
            return 0;
        }
        const Acc ceiling = (Acc{1} << bits) - 1;
        if (level > ceiling) [[unlikely]] {
            ++tally.clips;
            return ceiling;
        }
        return level;
    }

    /** Merge an externally accumulated tally into the counters. */
    void addTally(const AdcTally &tally) const;

    int bits() const { return _bits; }

    /** True if constructed for a noisy (saturating) analog path. */
    bool noisy() const { return _noisy; }

    /** Largest representable code. */
    Acc maxCode() const { return (Acc{1} << _bits) - 1; }

    /** Number of conversions performed (energy accounting). */
    std::uint64_t
    samples() const
    {
        return _samples.load(std::memory_order_relaxed);
    }

    /** Number of conversions that clipped (should stay 0). */
    std::uint64_t
    clips() const
    {
        return _clips.load(std::memory_order_relaxed);
    }

    /** SAR comparator cycles across all conversions (energy). */
    std::uint64_t
    bitCycles() const
    {
        return _bitCycles.load(std::memory_order_relaxed);
    }

    void resetStats();

  private:
    [[noreturn]] void negativePanic(Acc level) const;

    int _bits;
    bool _noisy;
    /**
     * Every dotProduct() call fetch_adds both counters once at retire
     * (addTally), from whatever thread ran the call. Each sits on its
     * own cache line so the two RMWs don't bounce one line between
     * workers — and don't share a line with the read-mostly config
     * fields above.
     */
    alignas(kCacheLineBytes) mutable std::atomic<std::uint64_t>
        _samples{0};
    alignas(kCacheLineBytes) mutable std::atomic<std::uint64_t>
        _clips{0};
    alignas(kCacheLineBytes) mutable std::atomic<std::uint64_t>
        _bitCycles{0};
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_ADC_H
