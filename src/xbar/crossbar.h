/**
 * @file
 * The memristor crossbar array: an R x C grid of w-bit conductance
 * cells whose bitline read performs an analog sum of products
 * (Fig. 1). The functional model computes the Kirchhoff current sum
 * as an exact integer (one LSB = one unit conductance at full input
 * voltage), with optional Gaussian noise injection.
 *
 * Read noise is *counter-based*: the jitter of a read is a pure
 * function of (seed, read sequence number, column), not of a shared
 * RNG stream. Concurrent readers therefore observe exactly the noise
 * a serial run would, which is what lets the bit-serial engine fan
 * its 16/v phases out across threads with bit-identical results.
 *
 * The 1T1R access device (Sec. II-D) has no effect on the dot product
 * at DAC output voltages and is therefore not modelled beyond its
 * area/energy contribution in the energy catalog.
 */

#ifndef ISAAC_XBAR_CROSSBAR_H
#define ISAAC_XBAR_CROSSBAR_H

#include <atomic>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "xbar/noise.h"

namespace isaac::xbar {

/** One physical crossbar array of w-bit cells. */
class CrossbarArray
{
  public:
    /**
     * @param rows      wordlines (128 in ISAAC-CE)
     * @param cols      bitlines (128 data + the unit column)
     * @param cellBits  bits per memristor cell (w; 2 in ISAAC-CE)
     */
    CrossbarArray(int rows, int cols, int cellBits);

    int rows() const { return _rows; }
    int cols() const { return _cols; }
    int cellBits() const { return _cellBits; }

    /** Maximum conductance level a cell can hold (2^w - 1). */
    int maxLevel() const { return (1 << _cellBits) - 1; }

    /**
     * Program one cell to a conductance level in [0, 2^w - 1] with a
     * bounded program-verify loop: pulse, read back, re-pulse until
     * the stored level matches the target or the NoiseSpec's
     * maxProgramPulses budget is exhausted. Under write noise each
     * pulse lands within a Gaussian error of the target; stuck cells
     * ignore programming entirely and burn the whole budget (which
     * is how the resilience layer detects them). Returns the number
     * of pulses issued; callers verify with cell().
     * Not thread-safe against concurrent reads of the same array.
     */
    int program(int row, int col, int level);

    /** Read back a programmed level (test/verification hook). */
    int cell(int row, int col) const;

    /**
     * Analog bitline read: sum over rows of input digit x cell level.
     * Inputs are DAC digits in [0, 2^v - 1]; the result is the exact
     * current sum in LSBs, plus noise if configured (each call draws
     * a fresh noise sequence number).
     */
    Acc readBitline(int col, std::span<const int> inputs) const;

    /**
     * One crossbar read cycle: all bitlines sampled against the same
     * input vector (the S&H latches every column simultaneously).
     * Thread-safe; the noise sequence number advances per call.
     */
    std::vector<Acc> readAllBitlines(std::span<const int> inputs) const;

    /**
     * As above, but with the caller supplying the noise sequence
     * number. Reads issued with the same `noiseSeq` see the same
     * jitter regardless of thread or call order — the engine keys
     * this on its input phase so parallel and serial execution are
     * bit-identical. Still counts one read cycle.
     */
    std::vector<Acc> readAllBitlines(std::span<const int> inputs,
                                     std::uint64_t noiseSeq) const;

    /**
     * As above with an explicit drift clock: `driftTime` is the
     * operation count the conductance-drift model ages cells by
     * (see effectiveLevel). The engine passes its op sequence number
     * so a bounded ABFT re-read (fresh noiseSeq) still observes the
     * *same* drifted conductances — drift is not a retryable error.
     * The two-argument overload uses driftTime = noiseSeq.
     */
    std::vector<Acc> readAllBitlines(std::span<const int> inputs,
                                     std::uint64_t noiseSeq,
                                     std::uint64_t driftTime) const;

    /**
     * Allocation-free variant of the three-argument overload: the
     * result lands in `out` (resized to cols()), so a caller that
     * loops — the engine's per-worker scratch, the ABFT retry loop —
     * reuses one buffer instead of allocating per read.
     */
    void readAllBitlinesInto(std::span<const int> inputs,
                             std::uint64_t noiseSeq,
                             std::uint64_t driftTime,
                             std::vector<Acc> &out) const;

    /**
     * Number of 64-bit words per column in the packed bit-plane
     * representation (ceil(rows / 64)).
     */
    int planeWords() const { return (_rows + 63) / 64; }

    /**
     * True when the packed bit-plane read is bit-exact for this
     * array: no read noise and no drift configured. Write noise and
     * stuck cells only shape the *stored* levels, which the planes
     * capture, so they do not disqualify the packed path.
     */
    bool
    packedReadExact() const
    {
        return !noise.readNoiseEnabled() && !noise.driftEnabled();
    }

    /**
     * One packed crossbar read cycle: every bitline current computed
     * as sum_b 2^b * sum_j 2^j * popcount(digitPlane[j] & plane[c][b])
     * over the stored-level bit-planes. Bit-identical to a clean
     * readAllBitlines() against the same input digits (the caller
     * packs digit bit j of row r into bit r of digitPlanes[j]; rows
     * beyond the input vector must be zero). `digitPlanes` holds
     * digitBits planes of planeWords() words each. fatal()s unless
     * packedReadExact(). Thread-safe against other reads; the planes
     * are rebuilt lazily after any program()/forceStuck()/setNoise().
     */
    void readAllBitlinesPacked(
        std::span<const std::uint64_t> digitPlanes, int digitBits,
        std::vector<Acc> &out) const;

    /**
     * Batched packed read: `n` digit-vector sets evaluated against
     * the stored planes in one plane-major popcount GEMM
     * (xbar/batch_kernel.h). `digitPlanes` holds the plane-major
     * bit-matrix dig[(j * planeWords() + w) * n + i] (window index i
     * innermost); `out` is resized to cols() * n with window i's
     * reading of column c at out[c * n + i], bit-identical to n
     * readAllBitlinesPacked() calls. Unlike the single-vector read
     * this does NOT count read cycles: the engine charges one cycle
     * per logical read *attempt* per window (chargeReadCycles), which
     * keeps readCycles() exact under ABFT retries. fatal()s unless
     * packedReadExact().
     */
    void readAllBitlinesPackedBatch(
        std::span<const std::uint64_t> digitPlanes, int digitBits,
        int n, std::vector<Acc> &out) const;

    /**
     * Upper bound on any packed bitline reading of this array: the
     * largest per-column stored-level sum times the largest digit
     * value (2^digitBits - 1). Computed from the stored levels, so
     * stuck and write-noised cells are included. The batched engine
     * compares it against the ADC code ceiling once per tile block —
     * when the bound fits, no reading of any column can clip (or go
     * negative: levels and digits are non-negative), and the digital
     * merge skips quantizer clamping entirely, bit-exactly.
     */
    Acc maxPackedReading(int digitBits) const;

    /**
     * Charge `n` read cycles without performing a read. The engine's
     * digit-vector memo replays cached reads and uses this to keep
     * readCycles() exactly equal to an unmemoized run.
     */
    void
    chargeReadCycles(std::uint64_t n) const
    {
        _readCycles.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Row-major view of every stored level (rows() x cols()).
     * Read-only programming/verification helper; not stable across
     * program() calls.
     */
    std::span<const int> storedLevels() const { return cells; }

    /**
     * Conductance the cell presents at drift clock `t`: the stored
     * level minus floor(driftLevelsPerOp * age * susceptibility),
     * clamped at 0, where age = t mod refreshIntervalOps (the
     * periodic refresh re-programs every cell, resetting its age)
     * and the susceptibility in [0, 1) is a pure function of
     * (seed, cell, refresh epoch). Stuck cells do not drift (their
     * conductance is frozen by the defect). Equals cell() whenever
     * drift is disabled or age is 0.
     */
    int effectiveLevel(int row, int col, std::uint64_t t) const;

    /**
     * Configure the non-ideality model. Must be set before
     * programming for write noise / stuck cells to take effect;
     * stuck cells are (re)drawn deterministically from the seed.
     * `instanceSalt` decorrelates the fault/write streams of arrays
     * sharing one NoiseSpec (an engine salts each tile with its
     * index); the default 0 reproduces the historical streams.
     */
    void setNoise(const NoiseSpec &spec,
                  std::uint64_t instanceSalt = 0);

    /** Number of stuck (unprogrammable) cells. */
    int stuckCells() const;

    /**
     * Fault-injection hook: freeze one cell at `level` (or heal it
     * with level = -1), independent of the statistical fault model.
     * The stored level snaps to the frozen one immediately. Used by
     * tests and targeted fault campaigns.
     */
    void forceStuck(int row, int col, int level);

    /**
     * Write pulses issued by program() since construction. Lifetime
     * (manufacturing-time) accounting; resetStats() does not clear
     * it. Feeds the WriteModel's measured time/energy accounting.
     */
    std::uint64_t programPulses() const { return _programPulses; }

    /** Number of full-array read cycles performed. */
    std::uint64_t
    readCycles() const
    {
        return _readCycles.load(std::memory_order_relaxed);
    }

    /** Reset activity counters (read cycles, noise sequence). */
    void resetStats();

    /** Number of cells programmed to a non-zero level. */
    std::int64_t programmedCells() const;

  private:
    Acc bitlineSum(int col, std::span<const int> inputs) const;
    Acc driftedBitlineSum(int col, std::span<const int> inputs,
                          std::uint64_t t) const;
    int driftedLevel(std::size_t idx, std::uint64_t t) const;
    double driftSusceptibility(std::size_t idx,
                               std::uint64_t epoch) const;
    /** Lazily build the epoch-0 susceptibility table. */
    const double *ensureSusceptibility() const;
    Acc applyReadNoise(Acc sum, std::uint64_t seq, int col) const;

    /** Rebuild the packed planes if stale; returns the plane base. */
    const std::uint64_t *ensurePlanes() const;
    /** Mark the packed planes stale (any stored-level mutation). */
    void
    invalidatePlanes()
    {
        _planesValid.store(false, std::memory_order_relaxed);
    }

    int _rows;
    int _cols;
    int _cellBits;
    std::vector<int> cells;      ///< row-major stored levels
    std::vector<int> stuckLevel; ///< -1 = healthy, else frozen level
    NoiseSpec noise;
    Rng writeRng;
    /** Salted base for the per-(cell, epoch) drift streams. */
    std::uint64_t driftSeed = 0;
    std::uint64_t _programPulses = 0;
    /** Sequence for standalone single-bitline reads. */
    mutable std::atomic<std::uint64_t> _noiseSeq{0};
    mutable std::atomic<std::uint64_t> _readCycles{0};
    /**
     * Packed bit-planes of the stored levels, one plane per (column,
     * cell bit): bit r of plane word r/64 is bit b of cell (r, c).
     * Layout: (c * cellBits + b) * planeWords() + word. Built lazily
     * under _planesMutex; _planesValid is the double-checked flag.
     * Mutators (program/forceStuck/setNoise) only invalidate — they
     * must not overlap reads, per the class contract above.
     */
    mutable std::vector<std::uint64_t> _planes;
    mutable std::atomic<bool> _planesValid{false};
    mutable std::mutex _planesMutex;
    /**
     * Per-cell drift susceptibility for refresh epoch 0, cached so a
     * long no-refresh campaign does not re-derive the same per-cell
     * RNG draw on every read (the draw is a pure function of the
     * seed, so the cache is exact). Later epochs stay on the direct
     * derivation — they change every refreshIntervalOps and caching
     * them would thrash. Built lazily under _planesMutex; setNoise()
     * invalidates.
     */
    mutable std::vector<double> _suscept;
    mutable std::atomic<bool> _susceptValid{false};
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_CROSSBAR_H
