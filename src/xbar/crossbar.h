/**
 * @file
 * The memristor crossbar array: an R x C grid of w-bit conductance
 * cells whose bitline read performs an analog sum of products
 * (Fig. 1). The functional model computes the Kirchhoff current sum
 * as an exact integer (one LSB = one unit conductance at full input
 * voltage), with optional Gaussian noise injection.
 *
 * The 1T1R access device (Sec. II-D) has no effect on the dot product
 * at DAC output voltages and is therefore not modelled beyond its
 * area/energy contribution in the energy catalog.
 */

#ifndef ISAAC_XBAR_CROSSBAR_H
#define ISAAC_XBAR_CROSSBAR_H

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "xbar/noise.h"

namespace isaac::xbar {

/** One physical crossbar array of w-bit cells. */
class CrossbarArray
{
  public:
    /**
     * @param rows      wordlines (128 in ISAAC-CE)
     * @param cols      bitlines (128 data + the unit column)
     * @param cellBits  bits per memristor cell (w; 2 in ISAAC-CE)
     */
    CrossbarArray(int rows, int cols, int cellBits);

    int rows() const { return _rows; }
    int cols() const { return _cols; }
    int cellBits() const { return _cellBits; }

    /** Maximum conductance level a cell can hold (2^w - 1). */
    int maxLevel() const { return (1 << _cellBits) - 1; }

    /**
     * Program one cell to a conductance level in [0, 2^w - 1].
     * Under a write-noise / fault model the stored level may differ:
     * program-verify lands within a Gaussian error of the target,
     * and stuck cells ignore programming entirely.
     */
    void program(int row, int col, int level);

    /** Read back a programmed level (test/verification hook). */
    int cell(int row, int col) const;

    /**
     * Analog bitline read: sum over rows of input digit x cell level.
     * Inputs are DAC digits in [0, 2^v - 1]; the result is the exact
     * current sum in LSBs, plus noise if configured.
     */
    Acc readBitline(int col, std::span<const int> inputs) const;

    /**
     * One crossbar read cycle: all bitlines sampled against the same
     * input vector (the S&H latches every column simultaneously).
     */
    std::vector<Acc> readAllBitlines(std::span<const int> inputs) const;

    /**
     * Configure the non-ideality model. Must be set before
     * programming for write noise / stuck cells to take effect;
     * stuck cells are (re)drawn deterministically from the seed.
     */
    void setNoise(const NoiseSpec &spec);

    /** Number of stuck (unprogrammable) cells. */
    int stuckCells() const;

    /** Number of full-array read cycles performed. */
    std::uint64_t readCycles() const { return _readCycles; }

    /** Number of cells programmed to a non-zero level. */
    std::int64_t programmedCells() const;

  private:
    int _rows;
    int _cols;
    int _cellBits;
    std::vector<int> cells;      ///< row-major stored levels
    std::vector<int> stuckLevel; ///< -1 = healthy, else frozen level
    NoiseSpec noise;
    mutable Rng noiseRng;
    Rng writeRng;
    mutable std::uint64_t _readCycles = 0;
};

} // namespace isaac::xbar

#endif // ISAAC_XBAR_CROSSBAR_H
