#include "xbar/encoding.h"

#include "common/logging.h"

namespace isaac::xbar {

std::uint16_t
biasWeight(Word w)
{
    return static_cast<std::uint16_t>(static_cast<Acc>(w) +
                                      kWeightBias);
}

Word
unbiasWeight(std::uint16_t u)
{
    return static_cast<Word>(static_cast<Acc>(u) - kWeightBias);
}

std::vector<int>
sliceWeight(std::uint16_t u, int cellBits)
{
    if (cellBits < 1 || cellBits > 16 || 16 % cellBits != 0)
        fatal("sliceWeight: cell bits must divide 16");
    const int digits = 16 / cellBits;
    const int mask = (1 << cellBits) - 1;
    std::vector<int> out(static_cast<std::size_t>(digits));
    for (int d = 0; d < digits; ++d)
        out[static_cast<std::size_t>(d)] =
            (u >> (d * cellBits)) & mask;
    return out;
}

std::uint16_t
unsliceWeight(std::span<const int> digits, int cellBits)
{
    std::uint32_t u = 0;
    for (std::size_t d = 0; d < digits.size(); ++d)
        u |= static_cast<std::uint32_t>(digits[d])
            << (d * static_cast<std::size_t>(cellBits));
    return static_cast<std::uint16_t>(u);
}

bool
shouldFlipColumn(std::span<const int> levels, int cellBits)
{
    Acc sum = 0;
    for (int level : levels)
        sum += level;
    const Acc maxSum = static_cast<Acc>(levels.size()) *
        ((Acc{1} << cellBits) - 1);
    // Flip when the sum exceeds half the maximum: with maximal
    // inputs the sum-of-products MSB would be 1 (Sec. V).
    return 2 * sum > maxSum;
}

int
flipLevel(int level, int cellBits)
{
    return ((1 << cellBits) - 1) - level;
}

Acc
unflipColumnSum(Acc flippedSum, Acc unitSum, int cellBits)
{
    return ((Acc{1} << cellBits) - 1) * unitSum - flippedSum;
}

Acc
encodedColumnCeiling(int usedRows, int v, int w)
{
    // ceil(R * (2^w - 1) / 2) scaled by the maximum input digit.
    const Acc maxCell = (Acc{1} << w) - 1;
    const Acc maxDigit = (Acc{1} << v) - 1;
    return (static_cast<Acc>(usedRows) * maxCell + 1) / 2 * maxDigit;
}

} // namespace isaac::xbar
