/**
 * @file
 * AVX-512 tier of the batched popcount GEMM: vpopcntdq gives a native
 * per-64-bit-lane popcount, so the accumulation row is simply
 * and → vpopcntq → shift → add over eight windows' words per
 * iteration, with a hardware-POPCNT scalar tail.
 *
 * Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq -mpopcnt via a
 * CMake source property on this file only; reached only through the
 * dispatcher after CPUID confirms all three AVX-512 features.
 */

#include "xbar/batch_kernel.h"

#include <immintrin.h>

#include "xbar/batch_kernel_impl.h"

namespace isaac::xbar::kernel {

namespace {

struct Avx512AccumRow
{
    void
    operator()(Acc *dst, const std::uint64_t *dp, std::uint64_t pw,
               int shift, int n) const
    {
        const __m512i bc =
            _mm512_set1_epi64(static_cast<long long>(pw));
        const __m128i sh = _mm_cvtsi32_si128(shift);
        int i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m512i d = _mm512_loadu_si512(
                reinterpret_cast<const void *>(dp + i));
            const __m512i cnt =
                _mm512_popcnt_epi64(_mm512_and_si512(d, bc));
            __m512i acc = _mm512_loadu_si512(
                reinterpret_cast<const void *>(dst + i));
            acc = _mm512_add_epi64(acc, _mm512_sll_epi64(cnt, sh));
            _mm512_storeu_si512(reinterpret_cast<void *>(dst + i),
                                acc);
        }
        for (; i < n; ++i) {
            dst[i] += static_cast<Acc>(std::popcount(dp[i] & pw))
                << shift;
        }
    }
};

} // namespace

void
batchedBitlineSumsAvx512(const std::uint64_t *cellPlanes, int cols,
                         int cellBits, int words,
                         const std::uint64_t *dig, int digitBits,
                         int n, Acc *out)
{
    detail::batchedBitlineSumsImpl(cellPlanes, cols, cellBits, words,
                                   dig, digitBits, n, out,
                                   Avx512AccumRow{});
}

void
scaleAddAvx512(Acc *acc, const Acc *row, int shift, bool negate,
               int n)
{
    const __m128i sh = _mm_cvtsi32_si128(shift);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i r = _mm512_loadu_si512(
            reinterpret_cast<const void *>(row + i));
        __m512i a = _mm512_loadu_si512(
            reinterpret_cast<const void *>(acc + i));
        const __m512i t = _mm512_sll_epi64(r, sh);
        a = negate ? _mm512_sub_epi64(a, t)
                   : _mm512_add_epi64(a, t);
        _mm512_storeu_si512(reinterpret_cast<void *>(acc + i), a);
    }
    if (i < n)
        detail::scaleAddImpl(acc + i, row + i, shift, negate, n - i);
}

void
scaleAddFlippedAvx512(Acc *acc, const Acc *row, const Acc *units,
                      int cellBits, int shift, bool negate, int n)
{
    const __m128i cb = _mm_cvtsi32_si128(cellBits);
    const __m128i sh = _mm_cvtsi32_si128(shift);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i u = _mm512_loadu_si512(
            reinterpret_cast<const void *>(units + i));
        const __m512i r = _mm512_loadu_si512(
            reinterpret_cast<const void *>(row + i));
        __m512i a = _mm512_loadu_si512(
            reinterpret_cast<const void *>(acc + i));
        // ((u << w) - u - v) << shift: the unflipped slice value.
        __m512i t = _mm512_sub_epi64(
            _mm512_sub_epi64(_mm512_sll_epi64(u, cb), u), r);
        t = _mm512_sll_epi64(t, sh);
        a = negate ? _mm512_sub_epi64(a, t)
                   : _mm512_add_epi64(a, t);
        _mm512_storeu_si512(reinterpret_cast<void *>(acc + i), a);
    }
    if (i < n) {
        detail::scaleAddFlippedImpl(acc + i, row + i, units + i,
                                    cellBits, shift, negate, n - i);
    }
}

} // namespace isaac::xbar::kernel
