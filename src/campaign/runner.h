/**
 * @file
 * The campaign driver: evaluates scenario grids end-to-end through
 * the compiled analog model and scores them against the fixed-point
 * reference.
 *
 * A Runner owns the workload half of a campaign — the network,
 * structured synthetic weights, a shared input batch, and the
 * reference executor's ground truth — all derived from the master
 * seed once. run() then sweeps scenarios *scenario-major* over the
 * ThreadPool: each scenario compiles its own model (engines serial)
 * and serves the batch through an InferenceSession, so campaign
 * parallelism never races scenario state. Results land indexed by
 * enumeration order, which makes the Report byte-identical at any
 * thread count and under any completion order.
 */

#ifndef ISAAC_CAMPAIGN_RUNNER_H
#define ISAAC_CAMPAIGN_RUNNER_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "nn/network.h"
#include "nn/reference.h"
#include "nn/tensor.h"
#include "nn/weights.h"

namespace isaac::campaign {

/** Workload-side knobs of one campaign. */
struct RunnerOptions
{
    /** Images in the shared input batch every scenario serves. */
    int batch = 4;

    /**
     * Scenario-major worker threads: 0 = one per hardware thread.
     * The Report is bit-identical at any setting.
     */
    int threads = 0;

    /**
     * Per-request deadline inside each scenario's session (zero =
     * none). A wedged scenario times out instead of stalling the
     * sweep; its record is flagged timed_out and excluded from the
     * Pareto frontier. Campaign determinism is only guaranteed when
     * no deadline fires.
     */
    std::chrono::nanoseconds scenarioDeadline{0};

    /**
     * Evaluate scenarios in a seed-scrambled order (results still
     * land at their enumeration index). Determinism tests use this
     * to pin completion-order independence.
     */
    bool scramble = false;

    /**
     * Per-network runtime budget: cap the merged, deduplicated
     * scenario list at this many entries (0 = run everything). The
     * cap is applied by campaign::sampleScenarios — a seeded,
     * analytic thinning, never a wall-clock cutoff — so a budgeted
     * report stays byte-identical at any thread count.
     */
    std::size_t scenarioBudget = 0;
};

/**
 * Resolve a campaign network name: "tinycnn", "vgg1".."vgg4",
 * "msra1".."msra3", "deepface", "dnn", or "alexnet". fatal() on an
 * unknown name.
 */
nn::Network buildNetwork(const std::string &name);

/**
 * Synthetic-but-structured weights: depth-decaying magnitudes,
 * smooth per-output-channel gains, and a pruned small-value mass —
 * closer to trained-network statistics than uniform noise, which is
 * what makes stuck-at and clipping faults perturb a realistic
 * activation distribution. Deterministic per (network, seed).
 */
nn::WeightStore synthesizeStructuredWeights(const nn::Network &net,
                                            std::uint64_t seed);

/** A campaign workload bound to one (network, master seed). */
class Runner
{
  public:
    Runner(const std::string &network, std::uint64_t masterSeed,
           RunnerOptions opts = {});

    /** Sweep one grid. */
    Report run(const Grid &grid) const;

    /** Sweep several grids as one campaign (IDs deduplicated). */
    Report run(const std::vector<Grid> &grids) const;

    /**
     * Replay a single scenario (typically parsed from a scenario
     * ID). The scenario must name this runner's network and master
     * seed; the result is bit-identical to the same scenario's
     * record inside a full campaign.
     */
    ScenarioResult runScenario(const Scenario &scenario) const;

    const nn::Network &network() const { return _net; }
    const std::vector<nn::Tensor> &inputs() const { return _inputs; }
    std::uint64_t masterSeed() const { return _seed; }
    const RunnerOptions &options() const { return _opts; }

  private:
    ScenarioResult evaluate(const Scenario &scenario) const;

    std::string _name;
    std::uint64_t _seed;
    RunnerOptions _opts;
    nn::Network _net;
    nn::WeightStore _weights;
    std::vector<nn::Tensor> _inputs;
    /** Ground truth per input: every layer's reference output. */
    std::vector<std::vector<nn::Tensor>> _ref;
    /** Reference top-1 class per input. */
    std::vector<int> _truth;
};

} // namespace isaac::campaign

#endif // ISAAC_CAMPAIGN_RUNNER_H
