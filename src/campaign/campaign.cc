#include "campaign/campaign.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <tuple>
#include <unordered_set>

#include "common/logging.h"
#include "core/json_writer.h"

namespace isaac::campaign {

std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
toToken(xbar::StuckMode mode)
{
    switch (mode) {
    case xbar::StuckMode::RandomLevel:
        return "rand";
    case xbar::StuckMode::On:
        return "on";
    case xbar::StuckMode::Off:
        return "off";
    }
    fatal("campaign: unknown StuckMode");
}

xbar::StuckMode
stuckModeFromToken(const std::string &token)
{
    if (token == "rand")
        return xbar::StuckMode::RandomLevel;
    if (token == "on")
        return xbar::StuckMode::On;
    if (token == "off")
        return xbar::StuckMode::Off;
    fatal("campaign: unknown stuck-mode token '" + token + "'");
}

namespace {

bool
tryParseDouble(const std::string &s, double &v)
{
    const auto res =
        std::from_chars(s.data(), s.data() + s.size(), v);
    return res.ec == std::errc{} &&
        res.ptr == s.data() + s.size() && std::isfinite(v);
}

bool
tryParseU64(const std::string &s, int base, std::uint64_t &v)
{
    const auto res =
        std::from_chars(s.data(), s.data() + s.size(), v, base);
    return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

std::string
formatHex(std::uint64_t v)
{
    char buf[32];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v, /*base=*/16);
    return std::string(buf, res.ptr);
}

/** One round of SplitMix64's output mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

} // namespace

std::string
Scenario::id() const
{
    std::string out;
    out += "net=" + network;
    out += ";w=" + formatDouble(writeSigma);
    out += ";r=" + formatDouble(readSigma);
    out += ";d=" + formatDouble(driftPerOp);
    out += ";a=" + std::to_string(driftAge);
    out += ";k=" + formatDouble(stuckRate);
    out += ";m=" + toToken(stuckMode);
    out += ";sp=" + std::to_string(spareCols);
    out += ";adc=" + std::to_string(adcBits);
    out += ";pol=" + std::string(xbar::adcPolicyKindName(policy));
    out += ";t=" + std::to_string(trial);
    out += ";s=" + formatHex(masterSeed);
    return out;
}

std::optional<Scenario>
Scenario::tryParse(const std::string &id, std::string *error)
{
    const auto fail =
        [&](const std::string &msg) -> std::optional<Scenario> {
        if (error != nullptr)
            *error = msg + " in scenario id '" + id + "'";
        return std::nullopt;
    };
    Scenario s;
    std::unordered_set<std::string> seen;
    std::size_t pos = 0;
    while (pos <= id.size()) {
        const std::size_t end = std::min(id.find(';', pos), id.size());
        const std::string pair = id.substr(pos, end - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return fail("malformed key=value pair '" + pair + "'");
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        if (key.empty())
            return fail("empty key");
        if (!seen.insert(key).second)
            return fail("duplicate key '" + key + "'");
        double d = 0.0;
        std::uint64_t u = 0;
        if (key == "net") {
            if (val.empty())
                return fail("empty network name");
            s.network = val;
        } else if (key == "w" || key == "r" || key == "d" ||
                   key == "k") {
            if (!tryParseDouble(val, d) || d < 0.0) {
                return fail("bad value '" + val + "' for key '" +
                            key +
                            "' (want a finite non-negative number)");
            }
            if (key == "w")
                s.writeSigma = d;
            else if (key == "r")
                s.readSigma = d;
            else if (key == "d")
                s.driftPerOp = d;
            else
                s.stuckRate = d;
        } else if (key == "a") {
            if (!tryParseU64(val, 10, u))
                return fail("bad drift age '" + val + "'");
            s.driftAge = u;
        } else if (key == "m") {
            if (val == "rand")
                s.stuckMode = xbar::StuckMode::RandomLevel;
            else if (val == "on")
                s.stuckMode = xbar::StuckMode::On;
            else if (val == "off")
                s.stuckMode = xbar::StuckMode::Off;
            else
                return fail("unknown stuck-mode token '" + val + "'");
        } else if (key == "sp" || key == "adc" || key == "t") {
            // Range-checked before the narrowing: a 64-bit count
            // must not wrap the int field it lands in.
            const std::uint64_t limit = key == "sp" ? 4096
                : key == "adc"                      ? 24
                : static_cast<std::uint64_t>(
                      std::numeric_limits<int>::max());
            if (!tryParseU64(val, 10, u) || u > limit) {
                return fail("bad value '" + val + "' for key '" +
                            key + "' (want an integer in [0, " +
                            std::to_string(limit) + "])");
            }
            if (key == "sp")
                s.spareCols = static_cast<int>(u);
            else if (key == "adc")
                s.adcBits = static_cast<int>(u);
            else
                s.trial = static_cast<int>(u);
        } else if (key == "pol") {
            if (val == "fixed")
                s.policy = xbar::AdcPolicyKind::Fixed;
            else if (val == "adaptive")
                s.policy = xbar::AdcPolicyKind::Adaptive;
            else
                return fail("unknown ADC policy '" + val +
                            "' (want fixed or adaptive)");
        } else if (key == "s") {
            if (!tryParseU64(val, 16, u))
                return fail("bad hex seed '" + val + "'");
            s.masterSeed = u;
        } else {
            return fail("unknown key '" + key + "'");
        }
        pos = end + 1;
    }
    // `pol` is deliberately absent: IDs minted before the policy
    // axis existed parse as fixed-policy scenarios.
    const char *required[] = {"net", "w",  "r",   "d", "a", "k",
                              "m",   "sp", "adc", "t", "s"};
    for (const char *key : required)
        if (!seen.count(key))
            return fail(std::string("missing key '") + key + "'");
    return s;
}

Scenario
Scenario::parse(const std::string &id)
{
    std::string error;
    auto s = tryParse(id, &error);
    if (!s)
        fatal("campaign: " + error);
    return *s;
}

std::uint64_t
Scenario::noiseSeed() const
{
    return mix64(masterSeed +
                 0x9E3779B97F4A7C15ull *
                     (static_cast<std::uint64_t>(trial) + 1));
}

arch::IsaacConfig
Scenario::config(int threads) const
{
    arch::IsaacConfig cfg;
    cfg.engine.threads = threads;
    cfg.engine.spareCols = spareCols;
    if (policy == xbar::AdcPolicyKind::Adaptive) {
        // adcBits is the adaptive cap; 0 caps at the derived
        // requirement (lossless).
        cfg.engine.adcPolicy = xbar::AdcPolicy::adaptive(adcBits);
    } else if (adcBits > 0) {
        cfg.engine.adcPolicy = xbar::AdcPolicy::fixed(adcBits);
    }
    auto &noise = cfg.engine.noise;
    noise.writeSigmaLevels = writeSigma;
    noise.sigmaLsb = readSigma;
    noise.stuckAtFraction = stuckRate;
    noise.stuckMode = stuckMode;
    noise.driftLevelsPerOp = driftPerOp;
    // Never refresh: the age set via ageArrays() must persist, and
    // refresh would reprogram cells mid-scenario (not replayable).
    noise.refreshIntervalOps = 0;
    noise.seed = noiseSeed();
    return cfg;
}

bool
Scenario::clean() const
{
    return writeSigma == 0.0 && readSigma == 0.0 &&
        driftPerOp == 0.0 && stuckRate == 0.0 && adcBits == 0;
}

std::vector<Scenario>
Grid::enumerate(std::uint64_t masterSeed) const
{
    if (trials < 1)
        fatal("campaign::Grid: trials must be >= 1");
    if (writeSigma.empty() || readSigma.empty() || drift.empty() ||
        stuckRate.empty() || stuckModes.empty() ||
        spareCols.empty() || adcBits.empty() || policies.empty())
        fatal("campaign::Grid: every axis needs at least one value");
    std::vector<Scenario> out;
    std::unordered_set<std::string> ids;
    for (double w : writeSigma)
        for (double r : readSigma)
            for (const DriftPoint &d : drift)
                for (double k : stuckRate)
                    for (std::size_t mi = 0;
                         mi < stuckModes.size(); ++mi) {
                        // Rate 0 makes the mode unobservable: keep
                        // only the first mode's combination.
                        if (k == 0.0 && mi > 0)
                            continue;
                        for (int sp : spareCols)
                            for (int adc : adcBits)
                                for (auto pol : policies)
                                    for (int t = 0; t < trials;
                                         ++t) {
                                        Scenario s;
                                        s.network = network;
                                        s.writeSigma = w;
                                        s.readSigma = r;
                                        s.driftPerOp =
                                            d.levelsPerOp;
                                        s.driftAge = d.age;
                                        s.stuckRate = k;
                                        s.stuckMode =
                                            stuckModes[mi];
                                        s.spareCols = sp;
                                        s.adcBits = adc;
                                        s.policy = pol;
                                        s.trial = t;
                                        s.masterSeed = masterSeed;
                                        if (ids.insert(s.id())
                                                .second)
                                            out.push_back(
                                                std::move(s));
                                    }
                    }
    return out;
}

std::vector<Scenario>
Grid::sample(std::size_t n, std::uint64_t masterSeed) const
{
    return sampleScenarios(enumerate(masterSeed), n,
                           masterSeed ^ 0x5A3D1E9C0B247F6Dull);
}

std::vector<Scenario>
sampleScenarios(std::vector<Scenario> scenarios, std::size_t n,
                std::uint64_t seed)
{
    if (n >= scenarios.size())
        return scenarios;
    // Partial Fisher-Yates over the enumeration indices driven by a
    // SplitMix64 stream: the first n slots are a uniform sample
    // without replacement. Survivors are gathered back in their
    // original order so the report reads like a thinned enumeration.
    std::vector<std::size_t> idx(scenarios.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < n; ++i) {
        state += 0x9E3779B97F4A7C15ull;
        const std::size_t j =
            i + static_cast<std::size_t>(mix64(state) %
                                         (idx.size() - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(n);
    std::sort(idx.begin(), idx.end());
    std::vector<Scenario> out;
    out.reserve(n);
    for (std::size_t i : idx)
        out.push_back(std::move(scenarios[i]));
    return out;
}

Grid
Grid::smoke()
{
    Grid g;
    g.writeSigma = {0.0, 0.15, 0.3};
    g.stuckRate = {0.0, 0.005, 0.02};
    g.stuckModes = {xbar::StuckMode::On};
    g.spareCols = {2};
    return g;
}

std::vector<Grid>
Grid::defaultSuite()
{
    // Main lab: everything except drift, which forces the scalar
    // read path and gets its own focused grid below.
    Grid main;
    main.writeSigma = {0.0, 0.3};
    main.readSigma = {0.0, 0.5};
    main.stuckRate = {0.0, 0.002, 0.005, 0.02};
    main.stuckModes = {xbar::StuckMode::Off, xbar::StuckMode::On};
    main.spareCols = {0, 2, 4};
    main.adcBits = {0, 7};
    main.trials = 3; // 168 points x 3 = 504 scenarios.

    Grid drift;
    drift.drift = {{5e-4, 512}, {5e-4, 4096}};
    drift.stuckRate = {0.0, 0.005};
    drift.stuckModes = {xbar::StuckMode::On};
    drift.spareCols = {0, 2};
    drift.trials = 2; // 8 points x 2 = 16 scenarios.

    // The adaptive-ADC policy lab: lossless (cap 0) points ride the
    // zero-noise exactness gate; the capped points measure what the
    // cheaper converter costs in agreement under realistic noise.
    Grid adaptive;
    adaptive.policies = {xbar::AdcPolicyKind::Adaptive};
    adaptive.adcBits = {0, 7};
    adaptive.writeSigma = {0.0, 0.3};
    adaptive.stuckRate = {0.0, 0.005};
    adaptive.stuckModes = {xbar::StuckMode::On};
    adaptive.spareCols = {2};
    adaptive.trials = 2; // 8 points x 2 = 16 scenarios.

    return {main, drift, adaptive};
}

std::string
ScenarioResult::toJson() const
{
    core::JsonArray layerArr;
    for (const auto &l : layers) {
        core::JsonObject lo;
        lo.field("layer", l.layer)
            .field("max_abs", l.maxAbs)
            .field("max_rel", l.maxRel)
            .field("mean_rel", l.meanRel);
        layerArr.item(lo.str());
    }
    core::JsonObject o;
    o.field("id", scenario.id())
        .raw("write_sigma", formatDouble(scenario.writeSigma))
        .raw("read_sigma", formatDouble(scenario.readSigma))
        .raw("drift_per_op", formatDouble(scenario.driftPerOp))
        .field("drift_age", scenario.driftAge)
        .raw("stuck_rate", formatDouble(scenario.stuckRate))
        .field("stuck_mode", toToken(scenario.stuckMode))
        .field("spare_cols", scenario.spareCols)
        .field("adc_bits", scenario.adcBits)
        .field("policy",
               std::string(xbar::adcPolicyKindName(scenario.policy)))
        .field("trial", scenario.trial)
        .field("batch", batch)
        .field("completed", completed)
        .field("top1_matches", top1Matches)
        .fixed("agreement", agreement, 4)
        .field("max_rel_err", maxRel)
        .field("final_mean_rel_err", finalMeanRel)
        .field("timed_out", timedOut)
        .raw("layers", layerArr.str())
        .raw("resilience", resilience.toJson())
        .field("images_per_sec", imagesPerSec)
        .field("energy_per_image_j", energyPerImageJ)
        .field("power_w", powerW)
        .field("pareto", pareto);
    return o.str();
}

void
Report::finalize()
{
    paretoFrontier.clear();
    const auto dominates = [](const ScenarioResult &a,
                              const ScenarioResult &b) {
        const bool geq = a.agreement >= b.agreement &&
            a.imagesPerSec >= b.imagesPerSec &&
            a.energyPerImageJ <= b.energyPerImageJ;
        const bool strict = a.agreement > b.agreement ||
            a.imagesPerSec > b.imagesPerSec ||
            a.energyPerImageJ < b.energyPerImageJ;
        return geq && strict;
    };
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        auto &cand = scenarios[i];
        cand.pareto = false;
        if (cand.timedOut)
            continue; // Partial measurements never make the frontier.
        bool dominated = false;
        for (std::size_t j = 0; j < scenarios.size() && !dominated;
             ++j) {
            if (j == i || scenarios[j].timedOut)
                continue;
            dominated = dominates(scenarios[j], cand);
        }
        if (!dominated) {
            cand.pareto = true;
            paretoFrontier.push_back(i);
        }
    }
}

int
Report::cleanScenarioCount() const
{
    int n = 0;
    for (const auto &r : scenarios)
        n += r.scenario.clean();
    return n;
}

double
Report::cleanAgreementMin() const
{
    double best = 1.0;
    for (const auto &r : scenarios)
        if (r.scenario.clean())
            best = std::min(best, r.agreement);
    return best;
}

double
Report::cleanMaxRel() const
{
    double worst = 0.0;
    for (const auto &r : scenarios)
        if (r.scenario.clean())
            worst = std::max(worst, r.maxRel);
    return worst;
}

namespace {

/**
 * Agreement-vs-stuck-rate curves: scenarios whose only active analog
 * knobs are stuck cells (and spares), grouped by (spares, rate,
 * mode), agreement averaged over trials.
 */
std::string
stuckCurvesJson(const std::vector<ScenarioResult> &scenarios)
{
    using Key = std::tuple<int, double, std::string>;
    std::map<Key, std::pair<double, int>> groups;
    for (const auto &r : scenarios) {
        const auto &s = r.scenario;
        if (s.writeSigma != 0.0 || s.readSigma != 0.0 ||
            s.driftPerOp != 0.0 || s.adcBits != 0 ||
            s.policy != xbar::AdcPolicyKind::Fixed || r.timedOut)
            continue;
        auto &g = groups[{s.spareCols, s.stuckRate,
                          toToken(s.stuckMode)}];
        g.first += r.agreement;
        g.second += 1;
    }
    core::JsonArray arr;
    for (const auto &[key, acc] : groups) {
        core::JsonObject o;
        o.field("spare_cols", std::get<0>(key))
            .raw("stuck_rate", formatDouble(std::get<1>(key)))
            .field("stuck_mode", std::get<2>(key))
            .fixed("agreement", acc.first / acc.second, 4)
            .field("scenarios", acc.second);
        arr.item(o.str());
    }
    return arr.str();
}

std::string
zeroNoiseJson(const Report &report)
{
    core::JsonObject o;
    o.field("scenarios", report.cleanScenarioCount())
        .fixed("min_agreement", report.cleanAgreementMin(), 4)
        .field("max_rel_err", report.cleanMaxRel());
    return o.str();
}

} // namespace

std::string
Report::toJson() const
{
    core::JsonArray frontier;
    for (std::size_t idx : paretoFrontier)
        frontier.stringItem(scenarios[idx].scenario.id());
    core::JsonArray records;
    for (const auto &r : scenarios)
        records.item(r.toJson());
    core::JsonObject o;
    o.field("network", network)
        .field("master_seed", formatHex(masterSeed))
        .field("batch", batch)
        .field("grid_points", gridPoints)
        .field("scenario_count",
               static_cast<std::int64_t>(scenarios.size()))
        .raw("zero_noise", zeroNoiseJson(*this))
        .raw("pareto_frontier", frontier.str())
        .raw("stuck_curves", stuckCurvesJson(scenarios))
        .raw("scenarios", records.str());
    return o.str();
}

std::string
Report::summaryJson() const
{
    core::JsonObject o;
    o.field("network", network)
        .field("master_seed", formatHex(masterSeed))
        .field("batch", batch)
        .field("scenario_count",
               static_cast<std::int64_t>(scenarios.size()))
        .field("pareto_size",
               static_cast<std::int64_t>(paretoFrontier.size()))
        .raw("zero_noise", zeroNoiseJson(*this))
        .field("content_hash", formatHex(contentHash()));
    return o.str();
}

std::uint64_t
Report::contentHash() const
{
    const std::string json = toJson();
    std::uint64_t h = 0xCBF29CE484222325ull; // FNV-1a 64 basis.
    for (const char c : json) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace isaac::campaign
