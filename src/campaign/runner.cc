#include "campaign/runner.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/accelerator.h"
#include "nn/zoo.h"
#include "serve/session.h"

namespace isaac::campaign {

nn::Network
buildNetwork(const std::string &name)
{
    if (name == "tinycnn")
        return nn::tinyCnn();
    if (name == "vgg1" || name == "vgg2" || name == "vgg3" ||
        name == "vgg4")
        return nn::vgg(name.back() - '0');
    if (name == "msra1" || name == "msra2" || name == "msra3")
        return nn::msra(name.back() - '0');
    if (name == "deepface")
        return nn::deepFace();
    if (name == "dnn")
        return nn::largeDnn();
    if (name == "alexnet")
        return nn::alexNetNoLrn();
    fatal("campaign: unknown network '" + name +
          "' (expected tinycnn, vgg1-4, msra1-3, deepface, dnn, or "
          "alexnet)");
}

nn::WeightStore
synthesizeStructuredWeights(const nn::Network &net,
                            std::uint64_t seed)
{
    nn::WeightStore store(net.size());
    int depth = 0; // Dot-product layers seen so far.
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        if (!l.isDotProduct())
            continue;
        Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
        auto &vec = store.layerMutable(i);
        vec.resize(static_cast<std::size_t>(l.weightCount()));
        // Trained networks concentrate magnitude in early layers and
        // around zero; reproduce both so faults hit a realistic
        // distribution instead of uniform noise.
        const double layerScale =
            9000.0 / (1.0 + 0.4 * static_cast<double>(depth));
        const std::int64_t len = l.dotLength();
        const std::int64_t windows =
            l.privateKernel ? l.windowsPerImage() : 1;
        for (std::int64_t w = 0; w < windows; ++w) {
            for (int k = 0; k < l.no; ++k) {
                // Smooth per-output-channel gain in [0.5, 1.5).
                const double gain = 0.5 + rng.uniform01();
                for (std::int64_t r = 0; r < len; ++r) {
                    // ~30% of weights pruned to a small-value mass.
                    const bool pruned = rng.uniform01() < 0.3;
                    const double mag = pruned ? 0.02 : 0.25;
                    const double v =
                        rng.gaussian() * layerScale * gain * mag;
                    const double clamped = std::clamp(
                        v, -32768.0, 32767.0);
                    vec[nn::WeightStore::index(l, w, k, r)] =
                        static_cast<Word>(std::lround(clamped));
                }
            }
        }
        ++depth;
    }
    return store;
}

namespace {

/** Top-1 class: index of the maximum word (first on ties). */
int
argmax(const nn::Tensor &t)
{
    const auto &data = t.raw();
    if (data.empty())
        return -1;
    std::size_t best = 0;
    for (std::size_t i = 1; i < data.size(); ++i)
        if (data[i] > data[best])
            best = i;
    return static_cast<int>(best);
}

} // namespace

Runner::Runner(const std::string &network, std::uint64_t masterSeed,
               RunnerOptions opts)
    : _name(network), _seed(masterSeed), _opts(opts),
      _net(buildNetwork(network)),
      _weights(synthesizeStructuredWeights(
          _net, masterSeed ^ 0x5EED5EED5EED5EEDull))
{
    if (_opts.batch < 1)
        fatal("campaign::Runner: batch must be >= 1");
    const FixedFormat fmt{12};
    const auto &first = _net.layer(0);
    _inputs.reserve(static_cast<std::size_t>(_opts.batch));
    for (int i = 0; i < _opts.batch; ++i) {
        _inputs.push_back(nn::synthesizeInput(
            first.ni, first.nx, first.ny,
            masterSeed + 0x9E3779B97F4A7C15ull *
                (static_cast<std::uint64_t>(i) + 1),
            fmt));
    }
    // Ground truth once per workload, not per scenario.
    const nn::ReferenceExecutor ref(_net, _weights, fmt,
                                    /*threads=*/1);
    _ref.reserve(_inputs.size());
    _truth.reserve(_inputs.size());
    for (const auto &input : _inputs) {
        _ref.push_back(ref.runAll(input));
        _truth.push_back(argmax(_ref.back().back()));
    }
}

ScenarioResult
Runner::evaluate(const Scenario &s) const
{
    ScenarioResult res;
    res.scenario = s;
    res.batch = static_cast<int>(_inputs.size());

    // Engines serial: campaign parallelism is scenario-major, and a
    // serial per-scenario walk keeps every counter and noise draw
    // independent of the campaign thread count.
    core::Accelerator acc(s.config(/*threads=*/1));
    auto model = acc.compile(_net, _weights, {});
    model.resetForScenario();
    if (s.driftPerOp > 0.0 && s.driftAge > 0)
        model.ageArrays(s.driftAge);

    serve::SessionOptions so;
    so.queueDepth = _inputs.size();
    so.workers = 1;
    so.defaultDeadline = _opts.scenarioDeadline;
    serve::InferenceSession session(model, so);
    std::vector<std::future<std::vector<nn::Tensor>>> futs;
    futs.reserve(_inputs.size());
    for (const auto &input : _inputs)
        futs.push_back(session.submitAll(input));
    session.drain();

    std::vector<double> sumRel;
    std::vector<std::uint64_t> relCount;
    for (std::size_t i = 0; i < futs.size(); ++i) {
        std::vector<nn::Tensor> outs;
        try {
            outs = futs[i].get();
        } catch (const serve::DeadlineExceeded &) {
            res.timedOut = true;
            continue;
        }
        ++res.completed;
        const auto &ref = _ref[i];
        const std::size_t n = std::min(outs.size(), ref.size());
        if (res.layers.size() < n) {
            res.layers.resize(n);
            sumRel.resize(n, 0.0);
            relCount.resize(n, 0);
        }
        for (std::size_t li = 0; li < n; ++li) {
            auto &div = res.layers[li];
            const auto &a = outs[li].raw();
            const auto &b = ref[li].raw();
            const std::size_t words = std::min(a.size(), b.size());
            for (std::size_t w = 0; w < words; ++w) {
                const double abs = std::abs(
                    static_cast<double>(a[w]) -
                    static_cast<double>(b[w]));
                const double rel = abs /
                    std::max(1.0,
                             std::abs(static_cast<double>(b[w])));
                div.maxAbs = std::max(div.maxAbs, abs);
                div.maxRel = std::max(div.maxRel, rel);
                sumRel[li] += rel;
                ++relCount[li];
            }
        }
        if (!outs.empty() && argmax(outs.back()) == _truth[i])
            ++res.top1Matches;
    }
    for (std::size_t li = 0; li < res.layers.size(); ++li) {
        res.layers[li].meanRel = relCount[li]
            ? sumRel[li] / static_cast<double>(relCount[li])
            : 0.0;
        res.maxRel = std::max(res.maxRel, res.layers[li].maxRel);
    }
    // Name the divergence records after the network's layers (the
    // session yields one output per layer, in layer order).
    for (std::size_t li = 0;
         li < res.layers.size() && li < _net.size(); ++li)
        res.layers[li].layer = _net.layer(li).name;
    if (!res.layers.empty())
        res.finalMeanRel = res.layers.back().meanRel;
    res.agreement = res.completed
        ? static_cast<double>(res.top1Matches) /
            static_cast<double>(res.completed)
        : 0.0;

    res.resilience = model.resilienceSummary();
    const auto &perf = model.perf();
    res.imagesPerSec = perf.imagesPerSec;
    res.energyPerImageJ = perf.energyPerImageJ;
    res.powerW = perf.powerW;
    return res;
}

ScenarioResult
Runner::runScenario(const Scenario &s) const
{
    if (s.network != _name) {
        fatal("campaign::Runner: scenario names network '" +
              s.network + "' but this runner serves '" + _name +
              "'");
    }
    if (s.masterSeed != _seed) {
        fatal("campaign::Runner: scenario master seed does not match "
              "this runner (replay requires the campaign's seed)");
    }
    return evaluate(s);
}

Report
Runner::run(const Grid &grid) const
{
    return run(std::vector<Grid>{grid});
}

Report
Runner::run(const std::vector<Grid> &grids) const
{
    std::vector<Scenario> scenarios;
    std::unordered_set<std::string> ids;
    for (const auto &grid : grids) {
        if (grid.network != _name) {
            fatal("campaign::Runner: grid names network '" +
                  grid.network + "' but this runner serves '" +
                  _name + "'");
        }
        for (auto &s : grid.enumerate(_seed))
            if (ids.insert(s.id()).second)
                scenarios.push_back(std::move(s));
    }
    if (_opts.scenarioBudget > 0 &&
        scenarios.size() > _opts.scenarioBudget) {
        scenarios = sampleScenarios(std::move(scenarios),
                                    _opts.scenarioBudget,
                                    _seed ^ 0xB0D6E77ACC0417F3ull);
    }

    // Evaluation order is a performance detail, never a semantic
    // one: results land at their enumeration index. The scramble
    // knob exists so tests can pin exactly that.
    std::vector<std::size_t> order(scenarios.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (_opts.scramble) {
        Rng rng(_seed ^ 0x5C7A3B1EULL);
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[static_cast<std::size_t>(rng.uniform(
                          0, static_cast<int>(i) - 1))]);
    }

    Report report;
    report.network = _name;
    report.masterSeed = _seed;
    report.batch = static_cast<int>(_inputs.size());
    report.gridPoints = static_cast<int>(scenarios.size());
    report.scenarios.resize(scenarios.size());
    parallelFor(static_cast<std::int64_t>(scenarios.size()),
                _opts.threads, [&](std::int64_t i, int) {
                    const std::size_t idx =
                        order[static_cast<std::size_t>(i)];
                    report.scenarios[idx] =
                        evaluate(scenarios[idx]);
                });
    report.finalize();
    return report;
}

} // namespace isaac::campaign
