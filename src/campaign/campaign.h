/**
 * @file
 * Monte Carlo fault-injection campaign lab (the ROADMAP's
 * accuracy-under-analog-noise item): scenario grids, stable scenario
 * identifiers, and the campaign report.
 *
 * A *scenario* is one fully specified analog configuration — write
 * noise, read noise, drift age, stuck-cell rate and polarity, spare
 * columns, ADC resolution — plus a trial number, evaluated on a
 * shared input batch against the bit-exact fixed-point reference.
 * The literature this chases (RxNN; Xiao et al., "On the Accuracy of
 * Analog Neural Network Inference Accelerators") scores analog
 * accelerators by *classification agreement*, not bit-exactness, so
 * that is what the campaign measures: top-1 agreement, per-layer
 * divergence, and the resilience/energy roll-ups joined into one
 * accuracy/energy/throughput Pareto record.
 *
 * Determinism contract: a campaign is a pure function of (grid,
 * master seed, batch). Scenario IDs are self-describing strings that
 * parse back into the exact Scenario (doubles round-trip via
 * shortest-form formatting), so any single grid point is replayable
 * in isolation, bit-for-bit, without re-enumerating the grid. The
 * scenario seed depends only on (master seed, trial) — deliberately
 * NOT on the knob values — so paired configurations (say spares 0
 * vs 4 at the same trial) face the *same* fault draw and the delta
 * isolates what the knob bought.
 */

#ifndef ISAAC_CAMPAIGN_CAMPAIGN_H
#define ISAAC_CAMPAIGN_CAMPAIGN_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/config.h"
#include "resilience/summary.h"
#include "xbar/adc_policy.h"
#include "xbar/noise.h"

namespace isaac::campaign {

/** One point on the conductance-drift axis. */
struct DriftPoint
{
    double levelsPerOp = 0.0; ///< NoiseSpec::driftLevelsPerOp.
    std::uint64_t age = 0;    ///< Op-clock age applied before runs.

    bool operator==(const DriftPoint &) const = default;
};

/** One fully specified (configuration, trial) grid point. */
struct Scenario
{
    std::string network = "tinycnn"; ///< Registry name (runner.h).
    double writeSigma = 0.0;  ///< Programming noise, levels.
    double readSigma = 0.0;   ///< Read noise, LSBs.
    double driftPerOp = 0.0;  ///< Drift rate, levels/op.
    std::uint64_t driftAge = 0; ///< Pre-aging, ops.
    double stuckRate = 0.0;   ///< Stuck-cell fraction.
    xbar::StuckMode stuckMode = xbar::StuckMode::On;
    int spareCols = 0;        ///< Remap budget per array.
    /**
     * ADC resolution knob. Fixed policy: explicit converter bits
     * (0 = the geometry-derived requirement). Adaptive policy: the
     * per-conversion cap (0 = cap at the requirement — provably
     * lossless, only the SAR cycle count changes).
     */
    int adcBits = 0;
    /** Which AdcPolicy the scenario lowers `adcBits` through. */
    xbar::AdcPolicyKind policy = xbar::AdcPolicyKind::Fixed;
    int trial = 0;            ///< Monte Carlo repetition index.
    std::uint64_t masterSeed = 0;

    /**
     * Stable self-describing identifier, e.g.
     * "net=tinycnn;w=0.3;r=0;d=0;a=0;k=0.005;m=on;sp=2;adc=0;
     * pol=fixed;t=1;s=15aac". parse(id()) reconstructs this Scenario
     * exactly (numbers use shortest-round-trip formatting; the seed
     * is hex). `pol` is always emitted but optional on parse — IDs
     * minted before the policy axis existed still replay (as fixed).
     */
    std::string id() const;

    /** Inverse of id(); fatal() on a malformed identifier. */
    static Scenario parse(const std::string &id);

    /**
     * Non-throwing inverse of id(): std::nullopt — with a
     * descriptive message in *error when non-null — for malformed,
     * truncated, duplicated, unknown, out-of-range, or non-finite
     * identifiers (replay tooling surfaces the message instead of
     * dying; parse() is tryParse() + fatal()). Numeric fields are
     * range-checked: rates/sigmas must be finite and non-negative,
     * sp/adc/t must fit their int fields (adc <= 24, matching the
     * SAR converter range AdcPolicy::validate enforces).
     */
    static std::optional<Scenario>
    tryParse(const std::string &id, std::string *error = nullptr);

    /**
     * The scenario's noise seed: a hash of (masterSeed, trial) only.
     * Every knob combination at the same trial shares one draw.
     */
    std::uint64_t noiseSeed() const;

    /**
     * Lower the scenario onto an ISAAC-CE design point. Campaign
     * scenarios run their engines serially (parallelism is
     * scenario-major) and never refresh (refreshIntervalOps = 0), so
     * the drift age applied via CompiledModel::ageArrays persists.
     */
    arch::IsaacConfig config(int threads = 1) const;

    /**
     * True for the zero-noise / zero-fault / full-ADC point, whose
     * analog pipeline must agree with the fixed-point reference
     * bit-for-bit (the campaign's self-check). A lossless adaptive
     * policy (adcBits == 0) is clean too: truncation below the
     * unit-certified bound never alters a clean reading, so the
     * exactness gate covers it.
     */
    bool clean() const;

    bool operator==(const Scenario &) const = default;
};

/**
 * A cartesian scenario grid: every combination of the axis values
 * below, times `trials` repetitions. Degenerate combinations are
 * deduplicated (stuckRate 0 ignores the mode axis). A campaign may
 * run several grids (Grid::defaultSuite) so expensive axes — drift
 * forces the scalar read path — get their own, smaller, cross
 * product instead of multiplying the whole lab.
 */
struct Grid
{
    std::string network = "tinycnn";
    std::vector<double> writeSigma{0.0};
    std::vector<double> readSigma{0.0};
    std::vector<DriftPoint> drift{{0.0, 0}};
    std::vector<double> stuckRate{0.0};
    std::vector<xbar::StuckMode> stuckModes{xbar::StuckMode::On};
    std::vector<int> spareCols{0};
    std::vector<int> adcBits{0};
    std::vector<xbar::AdcPolicyKind> policies{
        xbar::AdcPolicyKind::Fixed};
    int trials = 1;

    /**
     * All scenarios of this grid, in deterministic axis-major order
     * (trial innermost), deduplicated by scenario ID.
     */
    std::vector<Scenario> enumerate(std::uint64_t masterSeed) const;

    /**
     * A sampled (non-cartesian) subset: at most `n` of enumerate()'s
     * scenarios, drawn without replacement by a seeded partial
     * Fisher-Yates and returned in enumeration order. A pure
     * function of (grid, n, masterSeed) — no clocks, no thread
     * count — so sampled campaigns keep the byte-identical report
     * contract. n >= the grid size returns the full enumeration.
     */
    std::vector<Scenario> sample(std::size_t n,
                                 std::uint64_t masterSeed) const;

    /**
     * The CI smoke grid: 3 write-noise levels x 3 stuck rates on
     * TinyCNN, fast-path friendly (no read noise or drift), with the
     * clean point included. 9 scenarios.
     */
    static Grid smoke();

    /**
     * The default campaign lab (>= 500 scenarios): a main grid over
     * write/read noise x stuck rate/mode x spares x ADC bits, a
     * focused drift grid kept small because drifting reads take the
     * scalar path, and an adaptive-ADC grid measuring the policy
     * surface's accuracy deltas under noise.
     */
    static std::vector<Grid> defaultSuite();
};

/**
 * Deterministically thin `scenarios` to at most `n` entries (the
 * per-network runtime budget): a seeded partial Fisher-Yates picks
 * the survivors, which keep their relative order. Pure function of
 * (scenarios, n, seed).
 */
std::vector<Scenario> sampleScenarios(std::vector<Scenario> scenarios,
                                      std::size_t n,
                                      std::uint64_t seed);

/** Divergence of one layer's outputs vs the reference, over a batch. */
struct LayerDivergence
{
    std::string layer;    ///< Layer name from the network.
    double maxAbs = 0.0;  ///< Max |analog - reference|.
    double maxRel = 0.0;  ///< Max |analog - ref| / max(1, |ref|).
    double meanRel = 0.0; ///< Mean relative error over all words.
};

/** Everything measured for one scenario. */
struct ScenarioResult
{
    Scenario scenario;
    int batch = 0;        ///< Inputs submitted.
    int completed = 0;    ///< Inputs that finished (deadlines).
    int top1Matches = 0;  ///< Final argmax == reference argmax.
    double agreement = 0.0; ///< top1Matches / completed.
    double maxRel = 0.0;    ///< Worst relative error, any layer.
    double finalMeanRel = 0.0; ///< Mean relative error, final layer.
    bool timedOut = false;  ///< Any request hit its deadline.
    std::vector<LayerDivergence> layers;
    resilience::ResilienceSummary resilience;
    double imagesPerSec = 0.0;    ///< Analytic throughput.
    double energyPerImageJ = 0.0; ///< Analytic energy (ADC-aware).
    double powerW = 0.0;
    bool pareto = false; ///< On the accuracy/energy/speed frontier.

    std::string toJson() const;
};

/** One campaign's full, deterministic output. */
struct Report
{
    std::string network;
    std::uint64_t masterSeed = 0;
    int batch = 0;
    int gridPoints = 0; ///< Distinct scenarios enumerated.
    std::vector<ScenarioResult> scenarios;

    /**
     * Mark the Pareto-efficient scenarios (maximize agreement and
     * imagesPerSec, minimize energyPerImageJ; timed-out scenarios
     * are excluded) and record the frontier's scenario indices.
     * Runner calls this once after the sweep.
     */
    void finalize();

    /** Indices into `scenarios` (set by finalize()). */
    std::vector<std::size_t> paretoFrontier;

    /**
     * The full campaign JSON: every scenario record, the Pareto
     * frontier, agreement-vs-stuck-rate curves grouped by (spares,
     * rate, mode) over otherwise-clean scenarios, and the zero-noise
     * self-check. Pure function of the results — no timestamps — so
     * equal campaigns serialize byte-identically.
     */
    std::string toJson() const;

    /** Compact summary object for embedding (core::runReportJson). */
    std::string summaryJson() const;

    /** FNV-1a 64 hash of toJson(): the determinism fingerprint. */
    std::uint64_t contentHash() const;

    /** Scenarios where Scenario::clean() holds. */
    int cleanScenarioCount() const;

    /** Minimum agreement over the clean scenarios (1.0 if none). */
    double cleanAgreementMin() const;

    /** Worst relative error over the clean scenarios. */
    double cleanMaxRel() const;
};

/** Round-trip double formatting (shortest form, via to_chars). */
std::string formatDouble(double v);

/** StuckMode <-> scenario-ID token ("rand" / "on" / "off"). */
std::string toToken(xbar::StuckMode mode);
xbar::StuckMode stuckModeFromToken(const std::string &token);

} // namespace isaac::campaign

#endif // ISAAC_CAMPAIGN_CAMPAIGN_H
