#include "core/floorplan.h"

#include <cstdio>

#include "common/logging.h"

namespace isaac::core {

std::string
renderFloorplan(const pipeline::Placement &placement, int chip)
{
    if (chip < 0 ||
        chip >= static_cast<int>(placement.chips().size()))
        fatal("renderFloorplan: chip index out of range");
    const auto &c =
        placement.chips()[static_cast<std::size_t>(chip)];

    std::string out =
        "chip " + std::to_string(chip) + " (" +
        std::to_string(c.gridCols()) + "x" +
        std::to_string(c.gridRows()) + " tiles)\n";
    for (int y = 0; y < c.gridRows(); ++y) {
        for (int x = 0; x < c.gridCols(); ++x) {
            const auto &tile = c.tile(x, y);
            int first = -1;
            int owners = 0;
            int lastSeen = -1;
            for (const auto &ima : tile.imas()) {
                if (!ima.layer())
                    continue;
                const int l = static_cast<int>(*ima.layer());
                if (first < 0)
                    first = l;
                if (l != lastSeen) {
                    ++owners;
                    lastSeen = l;
                }
            }
            char cell[8];
            if (first < 0) {
                std::snprintf(cell, sizeof(cell), " .. ");
            } else {
                std::snprintf(cell, sizeof(cell), "%3d%c", first,
                              owners > 1 ? '*' : ' ');
            }
            out += cell;
        }
        out += '\n';
    }
    return out;
}

std::string
renderFloorplanLegend(const nn::Network &net,
                      const pipeline::Placement &placement)
{
    std::string out;
    for (const auto &lp : placement.layers()) {
        char line[128];
        std::snprintf(line, sizeof(line),
                      "  %3zu %-18s %6lld xbars %5zu tiles\n",
                      lp.layerIdx,
                      net.layer(lp.layerIdx).name.c_str(),
                      static_cast<long long>(lp.xbarsPlaced),
                      lp.tiles.size());
        out += line;
    }
    return out;
}

} // namespace isaac::core
