/**
 * @file
 * ASCII floorplan rendering: draws a chip's tile grid with the layer
 * occupying each tile, so a placement can be inspected at a glance
 * (which tiles a layer spans, where consecutive layers meet, which
 * tiles idle).
 */

#ifndef ISAAC_CORE_FLOORPLAN_H
#define ISAAC_CORE_FLOORPLAN_H

#include <string>

#include "nn/network.h"
#include "pipeline/placement.h"

namespace isaac::core {

/**
 * Render one chip of a placement. Each tile cell shows the index of
 * the (first) dot-product layer whose IMAs it hosts, '..' for idle
 * tiles, and '*' appended when several layers share the tile.
 */
std::string renderFloorplan(const pipeline::Placement &placement,
                            int chip);

/** Render a per-layer legend (index -> name, tiles, crossbars). */
std::string renderFloorplanLegend(
    const nn::Network &net, const pipeline::Placement &placement);

} // namespace isaac::core

#endif // ISAAC_CORE_FLOORPLAN_H
