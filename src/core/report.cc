#include "core/report.h"

#include <cstdio>

#include "campaign/campaign.h"
#include "core/json_writer.h"

namespace isaac::core {

namespace {

/** snprintf into a std::string. */
template <typename... Args>
std::string
line(const char *fmt, Args... args)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return std::string(buf);
}

} // namespace

std::string
formatBreakdown(const energy::Breakdown &b, const std::string &title)
{
    std::string out = title + "\n";
    out += line("  %-18s %-16s %10s %12s\n", "component", "spec",
                "power(mW)", "area(mm^2)");
    for (const auto &c : b.items) {
        out += line("  %-18s %-16s %10.3f %12.6f\n", c.name.c_str(),
                    c.spec.c_str(), c.powerMw, c.areaMm2);
    }
    out += line("  %-18s %-16s %10.3f %12.6f\n", "TOTAL", "",
                b.totalPowerMw(), b.totalAreaMm2());
    return out;
}

std::string
describeNetwork(const nn::Network &net)
{
    return line("%-10s %2zu layers (%2d with weights)  %8.1fM "
                "weights  %9.2fG MACs/image",
                net.name().c_str(), net.size(),
                net.weightLayerCount(),
                static_cast<double>(net.totalWeights()) / 1e6,
                static_cast<double>(net.totalMacs()) / 1e9);
}

std::string
formatIsaacPerf(const nn::Network &net,
                const pipeline::IsaacPerf &perf, int chips)
{
    if (!perf.fits) {
        return line("ISAAC  %-10s @ %2d chips: does not fit\n",
                    net.name().c_str(), chips);
    }
    std::string out;
    out += line("ISAAC  %-10s @ %2d chips\n", net.name().c_str(),
                chips);
    out += line("  throughput  %12.1f images/s (interval %.1f "
                "cycles)\n",
                perf.imagesPerSec, perf.cyclesPerImage);
    out += line("  power       %12.1f W\n", perf.powerW);
    out += line("  energy      %12.3f mJ/image (activity-based "
                "%.3f mJ)\n",
                perf.energyPerImageJ * 1e3,
                perf.activity.totalJ() * 1e3);
    out += line("  utilization %12.1f %% of peak MACs\n",
                perf.macUtilization * 100.0);
    return out;
}

namespace {

/** The shared prefix of both runReportJson overloads. */
JsonObject
runReportObject(const CompiledModel &model)
{
    const auto &perf = model.perf();
    const auto stats = model.engineStats();
    JsonObject o;
    o.field("network", model.network().name())
        .fixed("images_per_sec", perf.imagesPerSec, 1)
        .field("functional_arrays", model.functionalArrays())
        .field("ops", static_cast<std::uint64_t>(stats.ops))
        .raw("resilience", model.resilienceSummary().toJson());
    return o;
}

} // namespace

std::string
runReportJson(const CompiledModel &model)
{
    return runReportObject(model).str();
}

std::string
runReportJson(const CompiledModel &model,
              const campaign::Report &campaign)
{
    auto o = runReportObject(model);
    o.raw("campaign", campaign.summaryJson());
    return o.str();
}

std::string
formatDdnPerf(const nn::Network &net, const baseline::DdnPerf &perf)
{
    if (!perf.fits) {
        return line("DaDianNao %-10s @ %2d chips: weights exceed "
                    "eDRAM\n",
                    net.name().c_str(), perf.chips);
    }
    std::string out;
    out += line("DaDianNao %-10s @ %2d chips\n", net.name().c_str(),
                perf.chips);
    out += line("  throughput  %12.1f images/s\n", perf.imagesPerSec);
    out += line("  power       %12.1f W\n", perf.powerW);
    out += line("  energy      %12.3f mJ/image\n",
                perf.energyPerImageJ * 1e3);
    out += line("  NFU util    %12.1f %%\n",
                perf.avgNfuUtilization * 100.0);
    return out;
}

} // namespace isaac::core
