/**
 * @file
 * Plain-text report formatting shared by the benches and examples.
 */

#ifndef ISAAC_CORE_REPORT_H
#define ISAAC_CORE_REPORT_H

#include <string>

#include "baseline/dadiannao_perf.h"
#include "core/accelerator.h"
#include "energy/catalog.h"
#include "nn/network.h"
#include "pipeline/perf.h"

namespace isaac::campaign {
struct Report;
} // namespace isaac::campaign

namespace isaac::core {

/** Format a component power/area breakdown as an aligned table. */
std::string formatBreakdown(const energy::Breakdown &b,
                            const std::string &title);

/** One-line summary of a network (layers, weights, MACs). */
std::string describeNetwork(const nn::Network &net);

/** Multi-line ISAAC performance report. */
std::string formatIsaacPerf(const nn::Network &net,
                            const pipeline::IsaacPerf &perf,
                            int chips);

/** Multi-line DaDianNao performance report. */
std::string formatDdnPerf(const nn::Network &net,
                          const baseline::DdnPerf &perf);

/**
 * Machine-readable run report of a functional model: the network,
 * throughput headline, and the full resilience summary (fault
 * census including uncorrectable cells, ADC clips, and every
 * transient-error counter). Built from the same
 * CompiledModel::resilienceSummary() the dashboards read, so the
 * top-level report and faultReport() can never disagree.
 */
std::string runReportJson(const CompiledModel &model);

/**
 * As above, with a Monte Carlo campaign summary embedded under a
 * "campaign" key: scenario counts, zero-noise agreement, Pareto
 * frontier size, and the campaign content hash (campaign::Report::
 * summaryJson()). Lets a serving dashboard carry the latest
 * accuracy-under-noise evidence next to the live fault census.
 */
std::string runReportJson(const CompiledModel &model,
                          const campaign::Report &campaign);

} // namespace isaac::core

#endif // ISAAC_CORE_REPORT_H
