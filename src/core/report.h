/**
 * @file
 * Plain-text report formatting shared by the benches and examples.
 */

#ifndef ISAAC_CORE_REPORT_H
#define ISAAC_CORE_REPORT_H

#include <string>

#include "baseline/dadiannao_perf.h"
#include "energy/catalog.h"
#include "nn/network.h"
#include "pipeline/perf.h"

namespace isaac::core {

/** Format a component power/area breakdown as an aligned table. */
std::string formatBreakdown(const energy::Breakdown &b,
                            const std::string &title);

/** One-line summary of a network (layers, weights, MACs). */
std::string describeNetwork(const nn::Network &net);

/** Multi-line ISAAC performance report. */
std::string formatIsaacPerf(const nn::Network &net,
                            const pipeline::IsaacPerf &perf,
                            int chips);

/** Multi-line DaDianNao performance report. */
std::string formatDdnPerf(const nn::Network &net,
                          const baseline::DdnPerf &perf);

} // namespace isaac::core

#endif // ISAAC_CORE_REPORT_H
