#include "core/json.h"

#include "core/json_writer.h"

namespace isaac::core {

std::string
toJson(const arch::IsaacConfig &cfg)
{
    JsonObject o;
    o.field("label", cfg.label())
        .field("rows", std::int64_t{cfg.engine.rows})
        .field("cols", std::int64_t{cfg.engine.cols})
        .field("cellBits", std::int64_t{cfg.engine.cellBits})
        .field("dacBits", std::int64_t{cfg.engine.dacBits})
        .field("flipEncoding", cfg.engine.flipEncoding)
        .field("adcBits", std::int64_t{cfg.engine.adcBits()})
        .field("adcsPerIma", std::int64_t{cfg.adcsPerIma})
        .field("xbarsPerIma", std::int64_t{cfg.xbarsPerIma})
        .field("imasPerTile", std::int64_t{cfg.imasPerTile})
        .field("tilesPerChip", std::int64_t{cfg.tilesPerChip})
        .field("edramKBPerTile", std::int64_t{cfg.edramKBPerTile})
        .field("cycleNs", cfg.cycleNs)
        .field("peakGops", cfg.peakGops())
        .field("storageBytesPerChip", cfg.storageBytesPerChip());
    return o.str();
}

std::string
toJson(const nn::Network &net, const pipeline::PipelinePlan &plan)
{
    JsonArray layers;
    for (const auto &lp : plan.layers) {
        if (!lp.isDot)
            continue;
        JsonObject l;
        l.field("layer", net.layer(lp.layerIdx).name)
            .field("index",
                   static_cast<std::int64_t>(lp.layerIdx))
            .field("desiredReplication", lp.desiredReplication)
            .field("replication", lp.replication)
            .field("xbars", lp.xbars)
            .field("imas", lp.imas)
            .field("tiles", lp.tiles)
            .field("bufferBytes", lp.bufferBytes)
            .field("cyclesPerImage", lp.cyclesPerImage)
            .field("utilization", lp.utilization);
        layers.item(l.str());
    }

    JsonObject o;
    o.field("network", net.name())
        .field("chips", std::int64_t{plan.chips})
        .field("fits", plan.fits)
        .field("slowdown", plan.slowdown)
        .field("speedup", plan.speedup)
        .field("xbarsUsed", plan.xbarsUsed)
        .field("xbarsAvailable", plan.xbarsAvailable)
        .field("cyclesPerImage", plan.cyclesPerImage)
        .raw("layers", layers.str());
    return o.str();
}

std::string
toJson(const pipeline::IsaacPerf &perf)
{
    JsonObject a;
    a.field("adcJ", perf.activity.adcJ)
        .field("dacJ", perf.activity.dacJ)
        .field("xbarJ", perf.activity.xbarJ)
        .field("digitalJ", perf.activity.digitalJ)
        .field("edramJ", perf.activity.edramJ)
        .field("busJ", perf.activity.busJ)
        .field("htJ", perf.activity.htJ);

    JsonObject o;
    o.field("fits", perf.fits)
        .field("cyclesPerImage", perf.cyclesPerImage)
        .field("imagesPerSec", perf.imagesPerSec)
        .field("powerW", perf.powerW)
        .field("energyPerImageJ", perf.energyPerImageJ)
        .field("macUtilization", perf.macUtilization)
        .field("inputIoGBps", perf.inputIoGBps)
        .field("ioBound", perf.ioBound)
        .field("unpipelinedCyclesPerImage",
               perf.unpipelinedCyclesPerImage)
        .raw("activity", a.str());
    return o.str();
}

std::string
toJson(const baseline::DdnPerf &perf)
{
    JsonObject o;
    o.field("fits", perf.fits)
        .field("chips", std::int64_t{perf.chips})
        .field("cyclesPerImage", perf.cyclesPerImage)
        .field("imagesPerSec", perf.imagesPerSec)
        .field("powerW", perf.powerW)
        .field("energyPerImageJ", perf.energyPerImageJ)
        .field("avgNfuUtilization", perf.avgNfuUtilization);
    return o.str();
}

std::string
toJson(const noc::TrafficReport &report)
{
    JsonObject o;
    o.field("maxLinkGBps", report.maxLinkGBps)
        .field("linkCapacityGBps", report.linkCapacityGBps)
        .field("maxHtGBps", report.maxHtGBps)
        .field("htCapacityGBps", report.htCapacityGBps)
        .field("maxHtLinkGBps", report.maxHtLinkGBps)
        .field("maxLayerRateGBps", report.maxLayerRateGBps)
        .field("maxTileEgressGBps", report.maxTileEgressGBps)
        .field("hopGBps", report.hopGBps)
        .field("schedulable", report.schedulable);
    return o.str();
}

} // namespace isaac::core
