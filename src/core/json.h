/**
 * @file
 * JSON serialization of configurations, plans, and reports, so
 * downstream tooling (plotting scripts, regression dashboards) can
 * consume the models without linking the library.
 */

#ifndef ISAAC_CORE_JSON_H
#define ISAAC_CORE_JSON_H

#include <string>

#include "baseline/dadiannao_perf.h"
#include "noc/traffic.h"
#include "pipeline/perf.h"

namespace isaac::core {

/** A configuration as a JSON object. */
std::string toJson(const arch::IsaacConfig &cfg);

/** A pipeline plan (with per-layer detail) as a JSON object. */
std::string toJson(const nn::Network &net,
                   const pipeline::PipelinePlan &plan);

/** An ISAAC performance report as a JSON object. */
std::string toJson(const pipeline::IsaacPerf &perf);

/** A DaDianNao performance report as a JSON object. */
std::string toJson(const baseline::DdnPerf &perf);

/** A NoC traffic report as a JSON object. */
std::string toJson(const noc::TrafficReport &report);

} // namespace isaac::core

#endif // ISAAC_CORE_JSON_H
