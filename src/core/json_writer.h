/**
 * @file
 * The one JSON emission path for the project: a minimal builder for
 * objects and arrays of scalar fields, shared by the library toJson()
 * functions, runReportJson(), the campaign report, and the BENCH_*
 * writers so escaping and formatting decisions live in exactly one
 * place.
 *
 * Canonical style: `"key": value` with `", "` between fields — the
 * format the resilience/transient JSON (and its tests) pinned first.
 * Doubles use the stream default (6 significant digits) unless a
 * fixed precision is requested; non-finite doubles emit null.
 */

#ifndef ISAAC_CORE_JSON_WRITER_H
#define ISAAC_CORE_JSON_WRITER_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

namespace isaac::core {

/** Escape a string for embedding inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** Builder for one JSON object of scalar / raw fields. */
class JsonObject
{
  public:
    JsonObject &
    field(const std::string &key, double value)
    {
        auto &o = next(key);
        if (std::isfinite(value))
            o << value;
        else
            o << "null";
        return *this;
    }

    JsonObject &
    field(const std::string &key, std::int64_t value)
    {
        next(key) << value;
        return *this;
    }

    JsonObject &
    field(const std::string &key, std::uint64_t value)
    {
        next(key) << value;
        return *this;
    }

    JsonObject &
    field(const std::string &key, int value)
    {
        return field(key, static_cast<std::int64_t>(value));
    }

    JsonObject &
    field(const std::string &key, bool value)
    {
        next(key) << (value ? "true" : "false");
        return *this;
    }

    JsonObject &
    field(const std::string &key, const std::string &value)
    {
        next(key) << '"' << jsonEscape(value) << '"';
        return *this;
    }

    /** Without this, a string literal would bind to the bool overload. */
    JsonObject &
    field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    /** Fixed-precision double, printf %.*f style. */
    JsonObject &
    fixed(const std::string &key, double value, int precision)
    {
        auto &o = next(key);
        if (!std::isfinite(value)) {
            o << "null";
            return *this;
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
        o << buf;
        return *this;
    }

    /** Pre-rendered JSON value (nested object / array). */
    JsonObject &
    raw(const std::string &key, const std::string &json)
    {
        next(key) << json;
        return *this;
    }

    std::string
    str() const
    {
        return "{" + out.str() + "}";
    }

  private:
    std::ostringstream &
    next(const std::string &key)
    {
        if (!first)
            out << ", ";
        first = false;
        out << '"' << jsonEscape(key) << "\": ";
        return out;
    }

    std::ostringstream out;
    bool first = true;
};

/** Builder for one JSON array of raw elements. */
class JsonArray
{
  public:
    /** Pre-rendered JSON element (object, number, nested array). */
    JsonArray &
    item(const std::string &json)
    {
        next() << json;
        return *this;
    }

    JsonArray &
    item(double value)
    {
        auto &o = next();
        if (std::isfinite(value))
            o << value;
        else
            o << "null";
        return *this;
    }

    JsonArray &
    stringItem(const std::string &value)
    {
        next() << '"' << jsonEscape(value) << '"';
        return *this;
    }

    bool empty() const { return first; }

    std::string
    str() const
    {
        return "[" + out.str() + "]";
    }

  private:
    std::ostringstream &
    next()
    {
        if (!first)
            out << ", ";
        first = false;
        return out;
    }

    std::ostringstream out;
    bool first = true;
};

} // namespace isaac::core

#endif // ISAAC_CORE_JSON_WRITER_H
