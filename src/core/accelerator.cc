#include "core/accelerator.h"

#include "arch/edram.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "noc/packet.h"
#include "serve/session.h"

namespace isaac::core {

namespace {

/** Stream key of one logical transfer: (image, layer, buffer). */
std::uint64_t
transferKey(std::uint64_t imageKey, std::size_t layer, int kind)
{
    return (imageKey << 24) +
        (static_cast<std::uint64_t>(layer) << 8) +
        static_cast<std::uint64_t>(kind);
}

} // namespace

Accelerator::Accelerator(arch::IsaacConfig cfg) : cfg(cfg)
{
    cfg.validate();
}

CompiledModel
Accelerator::compile(const nn::Network &net,
                     const nn::WeightStore &weights,
                     CompileOptions opts) const
{
    return CompiledModel(net, weights, cfg, opts);
}

CompiledModel::CompiledModel(const nn::Network &net,
                             const nn::WeightStore &weights,
                             const arch::IsaacConfig &cfg,
                             CompileOptions opts)
    : net(net), weights(weights), cfg(cfg), opts(opts),
      _plan(pipeline::planPipeline(net, cfg, opts.chips)),
      _ir(pipeline::ExecutionPlan::lower(net, _plan)),
      lut(opts.format)
{
    const energy::IsaacEnergyModel model(cfg);
    _perf = pipeline::analyzeIsaac(net, _plan, model);

    if (!opts.functional)
        return;
    if (weights.size() != net.size())
        fatal("compile: weight store does not match the network");

    poolExec = std::make_unique<nn::ReferenceExecutor>(
        net, weights, opts.format, cfg.threads());
    engines.resize(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        if (!l.isDotProduct())
            continue;
        const auto &w = weights.layer(i);
        const auto len = static_cast<int>(l.dotLength());
        const std::int64_t groups =
            l.privateKernel ? l.windowsPerImage() : 1;
        auto &layerEngines = engines[i];
        layerEngines.reserve(static_cast<std::size_t>(groups));
        for (std::int64_t g = 0; g < groups; ++g) {
            const std::size_t base =
                nn::WeightStore::index(l, g, 0, 0);
            layerEngines.push_back(
                std::make_unique<xbar::BitSerialEngine>(
                    engineConfigFor(i, g),
                    std::span<const Word>(
                        w.data() + base,
                        static_cast<std::size_t>(l.no) * len),
                    len, l.no));
        }
    }
}

xbar::EngineConfig
CompiledModel::engineConfigFor(std::size_t layerIdx,
                               std::int64_t group) const
{
    // Each engine instance models distinct physical arrays, so
    // decorrelate its fault/noise streams per (layer, window group);
    // the clean path is unaffected. degradeDotLayer() rebuilds
    // through this same recipe, so a replacement engine draws the
    // streams a fresh compile would.
    auto engineCfg = cfg.engine;
    if (engineCfg.noise.anyEnabled()) {
        engineCfg.noise.seed ^= 0x9E3779B97F4A7C15ull *
            (static_cast<std::uint64_t>(layerIdx) * 0x10001ull +
             static_cast<std::uint64_t>(group) + 1ull);
    }
    return engineCfg;
}

nn::Tensor
CompiledModel::runDotLayer(std::size_t layerIdx,
                           const nn::Tensor &input) const
{
    const auto &l = net.layer(layerIdx);
    nn::Tensor out(l.no, l.outNx(), l.outNy());
    const std::int64_t windows =
        static_cast<std::int64_t>(l.outNx()) * l.outNy();
    const auto &shared = engines[layerIdx][0];
    if (!l.privateKernel && windows > 1 &&
        shared->config().batchWindows && shared->fastPathActive()) {
        // Batched layer execution: stage every window's input vector
        // once, then stream the whole layer through one
        // dotProductBatch() call — the engine packs each (phase, row
        // segment)'s digit planes into a single plane-major
        // bit-matrix and evaluates all windows per tile in one
        // popcount GEMM. Bit-identical results and counters to the
        // per-window loop below (tests assert it), minus thousands
        // of per-window staging/dispatch round trips.
        const int len = shared->numInputs();
        std::vector<Word> staged(
            static_cast<std::size_t>(windows) * len);
        parallelFor(
            windows, cfg.threads(), [&](std::int64_t window, int) {
                const int ox = static_cast<int>(window / l.outNy());
                const int oy = static_cast<int>(window % l.outNy());
                const auto inputs = nn::gatherWindow(input, l, ox, oy);
                std::copy(inputs.begin(), inputs.end(),
                          staged.begin() +
                              static_cast<std::size_t>(window) * len);
            });
        const auto sums = shared->dotProductBatch(
            staged, static_cast<int>(windows));
        parallelFor(
            windows, cfg.threads(), [&](std::int64_t window, int) {
                const int ox = static_cast<int>(window / l.outNy());
                const int oy = static_cast<int>(window % l.outNy());
                const Acc *row = sums.data() +
                    static_cast<std::size_t>(window) * l.no;
                for (int k = 0; k < l.no; ++k) {
                    const Word q = requantizeAcc(
                        row[static_cast<std::size_t>(k)],
                        opts.format);
                    out.at(k, ox, oy) =
                        nn::applyActivation(l.activation, q, lut);
                }
            });
        return out;
    }
    // dotProduct() is concurrency-safe, so windows of a layer can be
    // issued in parallel even against a shared engine (exactly as
    // replicated IMAs pipeline windows in hardware). Sharing the
    // engine also shares its per-tile digit-vector memo: overlapping
    // windows and repeated batch images present recurring digit
    // vectors (sign-extended high phases above all, since quantized
    // activations rarely fill 16 bits), and those replay cached
    // readings instead of re-simulating the crossbar.
    parallelFor(windows, cfg.threads(), [&](std::int64_t window, int) {
        const int ox = static_cast<int>(window / l.outNy());
        const int oy = static_cast<int>(window % l.outNy());
        const auto inputs = nn::gatherWindow(input, l, ox, oy);
        const auto &engine = l.privateKernel
            ? engines[layerIdx][static_cast<std::size_t>(window)]
            : engines[layerIdx][0];
        const auto sums = engine->dotProduct(inputs);
        for (int k = 0; k < l.no; ++k) {
            const Word q = requantizeAcc(
                sums[static_cast<std::size_t>(k)], opts.format);
            out.at(k, ox, oy) =
                nn::applyActivation(l.activation, q, lut);
        }
    });
    return out;
}

void
CompiledModel::requireFunctional(const char *what) const
{
    if (!opts.functional || !poolExec) {
        fatal(std::string(what) +
              ": model was compiled with CompileOptions::functional "
              "= false (analytic plan/report only; no crossbar "
              "engines were materialized). Recompile with "
              "CompileOptions::functional = true to run inference.");
    }
}

std::uint64_t
CompiledModel::claimImageKeys(std::uint64_t count) const
{
    return _imageSeq.fetch_add(count, std::memory_order_relaxed);
}

void
CompiledModel::executeStep(const pipeline::StepNode &node,
                           nn::Tensor &cur, std::uint64_t imageKey,
                           resilience::TransientStats &local) const
{
    requireFunctional("executeStep");
    const auto &spec = cfg.transient;
    switch (node.kind) {
      case pipeline::StepKind::StageIn:
      case pipeline::StepKind::StageOut:
        // A dot layer's activations stage through the tile's eDRAM
        // buffer on the way in and the output registers on the way
        // out; both are SECDED-protected passes.
        if (spec.eccEnabled()) {
            arch::protectedPass(
                cur.raw(),
                node.kind == pipeline::StepKind::StageIn
                    ? spec.edramFlipRate
                    : spec.orFlipRate,
                transferKey(imageKey, node.layer, node.transferKind),
                spec, local);
        }
        break;
      case pipeline::StepKind::Dot:
        cur = runDotLayer(node.layer, cur);
        break;
      case pipeline::StepKind::Transfer:
        if (spec.nocEnabled()) {
            // The layer's output ships to its consumers over the
            // c-mesh as CRC-tagged packets. The functional model
            // scopes the corruption budget per transfer; persistent
            // per-link state (and the migration a dead link
            // triggers) is the chip simulator's job.
            noc::LinkState link;
            noc::sendTransfer(
                static_cast<std::int64_t>(cur.size()),
                transferKey(imageKey, node.layer, node.transferKind),
                spec, link, local);
        }
        break;
      case pipeline::StepKind::Pool:
        cur = poolExec->runLayer(node.layer, cur);
        break;
    }
}

void
CompiledModel::finishImage(const resilience::TransientStats &local)
    const
{
    if (cfg.transient.anyEnabled())
        health.add(local);
}

std::vector<nn::Tensor>
CompiledModel::inferAllKeyed(const nn::Tensor &input,
                             std::uint64_t imageKey) const
{
    requireFunctional("infer");
    resilience::TransientStats local;
    std::vector<nn::Tensor> outs;
    nn::Tensor cur = input;
    for (const auto &node : _ir.nodes()) {
        executeStep(node, cur, imageKey, local);
        if (node.layerOutput)
            outs.push_back(cur);
    }
    finishImage(local);
    return outs;
}

std::vector<nn::Tensor>
CompiledModel::inferAll(const nn::Tensor &input) const
{
    // Single-image front door of the session path: one request,
    // keyed at submission, per-layer outputs collected by the walk.
    requireFunctional("inferAll");
    serve::InferenceSession session(
        *this, serve::SessionOptions{.queueDepth = 1, .workers = 1});
    auto result = session.submitAll(input);
    session.drain();
    return result.get();
}

nn::Tensor
CompiledModel::infer(const nn::Tensor &input) const
{
    auto outs = inferAll(input);
    return std::move(outs.back());
}

std::vector<nn::Tensor>
CompiledModel::inferBatch(const std::vector<nn::Tensor> &inputs) const
{
    // Images in a batch are functionally independent (the hardware
    // pipeline keeps several in flight); pipeline them through an
    // inference session. Submission order claims the image keys, so
    // the injection streams follow batch order regardless of the
    // execution interleaving.
    requireFunctional("inferBatch");
    serve::SessionOptions sopts;
    sopts.queueDepth = std::max<std::size_t>(inputs.size(), 1);
    sopts.workers = cfg.threads();
    serve::InferenceSession session(*this, sopts);
    return session.run(inputs);
}

xbar::EngineStats
CompiledModel::engineStats() const
{
    xbar::EngineStats total;
    for (const auto &layer : engines)
        for (const auto &e : layer)
            total.merge(e->stats());
    return total;
}

std::uint64_t
CompiledModel::memoHits() const
{
    std::uint64_t total = 0;
    for (const auto &layer : engines)
        for (const auto &e : layer)
            total += e->memoHits();
    return total;
}

std::uint64_t
CompiledModel::memoMisses() const
{
    std::uint64_t total = 0;
    for (const auto &layer : engines)
        for (const auto &e : layer)
            total += e->memoMisses();
    return total;
}

std::uint64_t
CompiledModel::adcClips() const
{
    std::uint64_t clips = 0;
    for (const auto &layer : engines)
        for (const auto &e : layer)
            clips += e->adcClips();
    return clips;
}

std::int64_t
CompiledModel::engineGroupCount(std::size_t layerIdx) const
{
    if (layerIdx >= engines.size())
        return 0;
    return static_cast<std::int64_t>(engines[layerIdx].size());
}

const xbar::BitSerialEngine *
CompiledModel::engine(std::size_t layerIdx, std::int64_t group) const
{
    if (layerIdx >= engines.size() || group < 0 ||
        group >= engineGroupCount(layerIdx))
        return nullptr;
    return engines[layerIdx][static_cast<std::size_t>(group)].get();
}

xbar::BitSerialEngine *
CompiledModel::engineMut(std::size_t layerIdx, std::int64_t group)
{
    if (layerIdx >= engines.size() || group < 0 ||
        group >= engineGroupCount(layerIdx))
        return nullptr;
    return engines[layerIdx][static_cast<std::size_t>(group)].get();
}

std::int64_t
CompiledModel::degradeDotLayer(std::size_t layerIdx,
                               std::int64_t group)
{
    requireFunctional("degradeDotLayer");
    if (engineMut(layerIdx, group) == nullptr) {
        fatal("CompiledModel::degradeDotLayer: no functional engine "
              "for that (layer, group)");
    }
    const auto &l = net.layer(layerIdx);
    const auto &w = weights.layer(layerIdx);
    const auto len = static_cast<int>(l.dotLength());
    const std::size_t base = nn::WeightStore::index(l, group, 0, 0);
    // Rebuild on fresh arrays from the pristine weight store: the
    // quarantined tile's unrepairable cells are replaced by healthy
    // hardware, exactly as the chip simulator re-places a dead
    // tile's weight copies onto survivors. The old engine's activity
    // counters die with it.
    engines[layerIdx][static_cast<std::size_t>(group)] =
        std::make_unique<xbar::BitSerialEngine>(
            engineConfigFor(layerIdx, group),
            std::span<const Word>(
                w.data() + base,
                static_cast<std::size_t>(l.no) * len),
            len, l.no);
    return _ir.recordMigration(layerIdx);
}

int
CompiledModel::functionalArrays() const
{
    int arrays = 0;
    for (const auto &layer : engines)
        for (const auto &e : layer)
            arrays += e->physicalArrays();
    return arrays;
}

resilience::ArrayFaultReport
CompiledModel::faultReport() const
{
    resilience::ArrayFaultReport report;
    for (const auto &layer : engines)
        for (const auto &e : layer)
            report.merge(e->faultReport());
    return report;
}

resilience::TransientStats
CompiledModel::transientStats() const
{
    auto total = health.snapshot();
    for (const auto &layer : engines)
        for (const auto &e : layer)
            total.merge(e->transientStats());
    return total;
}

void
CompiledModel::resetStats()
{
    for (const auto &layer : engines)
        for (const auto &e : layer)
            e->resetStats();
    health.reset();
    // Rewind the image counter so replayed workloads key the same
    // injection streams (the engines rewind their own sequences).
    _imageSeq.store(0, std::memory_order_relaxed);
}

void
CompiledModel::resetForScenario()
{
    resetStats();
}

void
CompiledModel::ageArrays(std::uint64_t ops)
{
    requireFunctional("ageArrays");
    for (const auto &layer : engines)
        for (const auto &e : layer)
            e->advanceOpClock(ops);
}

resilience::ResilienceSummary
CompiledModel::resilienceSummary() const
{
    resilience::ResilienceSummary summary;
    summary.faults = faultReport();
    summary.adcClips = adcClips();
    summary.transient = transientStats();
    return summary;
}

} // namespace isaac::core
