/**
 * @file
 * The top-level ISAAC accelerator API.
 *
 * An Accelerator owns a design point (arch::IsaacConfig). Compiling a
 * network against it produces a CompiledModel holding
 *
 *  - the inter-layer pipeline plan (replication, tile allocation),
 *  - the analytic performance/energy report,
 *  - and, for functional execution, one bit-serial crossbar engine
 *    per dot-product layer (per window for private kernels),
 *    programmed with the sliced/biased/flipped weight encoding.
 *
 * CompiledModel::infer() runs an input through the full analog
 * pipeline model and returns results that are bit-identical to the
 * software reference executor (tests assert this).
 */

#ifndef ISAAC_CORE_ACCELERATOR_H
#define ISAAC_CORE_ACCELERATOR_H

#include <atomic>
#include <memory>
#include <vector>

#include "arch/config.h"
#include "nn/reference.h"
#include "pipeline/execution_plan.h"
#include "pipeline/perf.h"
#include "resilience/health.h"
#include "xbar/engine.h"

namespace isaac::core {

/** Options controlling compilation. */
struct CompileOptions
{
    /** Chips the plan may use. */
    int chips = 1;

    /** Fixed-point format of activations and weights. */
    FixedFormat format{12};

    /**
     * Build the functional crossbar engines. Disable for large
     * networks where only the analytic plan/report is wanted
     * (engines materialize every weight in simulated crossbars).
     */
    bool functional = true;
};

/** A network bound to an ISAAC configuration. */
class CompiledModel
{
  public:
    /** The pipeline plan (replication, tiles, buffering). */
    const pipeline::PipelinePlan &plan() const { return _plan; }

    /** Analytic throughput/power/energy report. */
    const pipeline::IsaacPerf &perf() const { return _perf; }

    const nn::Network &network() const { return net; }

    /**
     * The lowered execution-plan IR (annotated with this plan's
     * resource grants). Every inference path — infer/inferAll/
     * inferBatch, serve::InferenceSession, and the cycle-level
     * simulators' ready-time precompute — walks this one graph.
     */
    const pipeline::ExecutionPlan &executionPlan() const
    {
        return _ir;
    }

    /** Whether functional crossbar engines were materialized. */
    bool isFunctional() const { return opts.functional; }

    /**
     * Run one inference through the analog pipeline model. Requires
     * functional compilation.
     */
    nn::Tensor infer(const nn::Tensor &input) const;

    /** Per-layer outputs of one inference. */
    std::vector<nn::Tensor> inferAll(const nn::Tensor &input) const;

    /**
     * Run a batch of inferences (the steady-state pipeline keeps
     * several images in flight; functionally they are independent).
     * Routed through serve::InferenceSession: images claim their
     * keys in batch order and pipeline across layer-steps.
     */
    std::vector<nn::Tensor>
    inferBatch(const std::vector<nn::Tensor> &inputs) const;

    /**
     * Claim `count` consecutive logical image keys. The key — not
     * execution order — seeds the per-image transient-injection
     * streams, so claiming at submission time makes any execution
     * interleaving replay the sequential streams exactly. All entry
     * points (inferAll, inferBatch, serve sessions) share this one
     * counter; resetStats() rewinds it.
     */
    std::uint64_t claimImageKeys(std::uint64_t count = 1) const;

    /**
     * Execute one IR step for one image: transforms `cur` in place
     * (compute steps replace it, hand-off steps pass it through the
     * protected buffer/NoC models) and accumulates the image's
     * transient activity into `local`. Steps of one image must run
     * in IR order; steps of different images may run concurrently.
     */
    void executeStep(const pipeline::StepNode &node, nn::Tensor &cur,
                     std::uint64_t imageKey,
                     resilience::TransientStats &local) const;

    /**
     * Fold one finished image's transient activity into the model's
     * health roll-up. Call exactly once per walked image.
     */
    void finishImage(const resilience::TransientStats &local) const;

    /**
     * inferAll with an explicit image key: walks the IR start to
     * finish on the calling thread. Public so schedulers replaying
     * specific keys (and parity tests) can drive it directly.
     */
    std::vector<nn::Tensor> inferAllKeyed(const nn::Tensor &input,
                                          std::uint64_t imageKey)
        const;

    /** Aggregated crossbar-engine activity since compilation. */
    xbar::EngineStats engineStats() const;

    /**
     * Digit-vector memo replay hits / misses summed over every
     * functional engine. A layer's windows share one engine (and for
     * shared kernels one tile memo), so overlapping conv windows and
     * repeated batch images replay each other's readings — these
     * counters quantify that reuse. Diagnostic: the split depends on
     * thread interleaving even though results and stats never do.
     */
    std::uint64_t memoHits() const;
    std::uint64_t memoMisses() const;

    /** ADC clip events across all engines (0 unless noisy). */
    std::uint64_t adcClips() const;

    /** Physical crossbars materialized by the functional model. */
    int functionalArrays() const;

    /** Engine groups materialized for a layer (0 for non-dot). */
    std::int64_t engineGroupCount(std::size_t layerIdx) const;

    /**
     * Engine reuse hook: the functional engine serving one layer's
     * window group (group 0 for shared kernels). Serving backends
     * and parity tests read per-tile tallies and reuse the engines
     * across sessions through this accessor; nullptr when the model
     * is analytic-only or the layer has no dot product.
     */
    const xbar::BitSerialEngine *engine(std::size_t layerIdx,
                                        std::int64_t group = 0) const;

    /**
     * Mutable engine access for the self-healing supervisor
     * (serve::HealthWatchdog): online repair (repairTile) and fault
     * injection are structural mutations, so the caller must ensure
     * no dotProduct() overlaps — the serving runtime's exclusive
     * repair lock provides that. nullptr exactly when engine() is.
     */
    xbar::BitSerialEngine *engineMut(std::size_t layerIdx,
                                     std::int64_t group = 0);

    /**
     * Graceful degradation: rebuild one layer's engine group from
     * the weight store on fresh arrays — the functional analogue of
     * the chip simulator's dead-tile server migration — and annotate
     * the ExecutionPlan's Dot node through recordMigration() (tile
     * grant shrinks, migratedCopies/degraded set). Returns the
     * migrated copy count. The rebuilt engine reproduces the
     * compile-time config (including the per-engine noise-seed salt),
     * so its manufactured-defect and noise streams replay those of a
     * fresh compile; its activity counters restart from zero (the
     * quarantined tile's history dies with it). Must not overlap
     * in-flight inferences — hold the repair lock.
     */
    std::int64_t degradeDotLayer(std::size_t layerIdx,
                                 std::int64_t group = 0);

    /** Aggregate fault census across every functional engine. */
    resilience::ArrayFaultReport faultReport() const;

    /**
     * Transient-error counters rolled up across the whole stack:
     * the engines' ABFT/refresh activity plus the buffer-ECC and
     * NoC-retry activity the inference paths fed the health monitor.
     * Deterministic per seed and identical at any thread count.
     */
    resilience::TransientStats transientStats() const;

    /**
     * Zero every activity counter (engine stats, ADC tallies,
     * transient counters) and rewind the deterministic noise/drift
     * sequences, so a replayed workload reports exactly what a
     * freshly compiled model would.
     */
    void resetStats();

    /**
     * Rewind the model to a scenario boundary: the one entry point a
     * fault-injection campaign calls between back-to-back scenarios
     * on a shared compiled model. Today this is resetStats() — which
     * already rewinds the engine op clocks (drift age), digit-vector
     * memos, ADC tallies, health roll-up, and the session image-key
     * counter together — under a name that states the contract:
     * after this call, a run is bit-identical to the same run on a
     * freshly compiled model (tests/campaign pins this). Stored cell
     * levels are untouched; they are scenario state, not activity.
     * Must not overlap in-flight inferences.
     */
    void resetForScenario();

    /**
     * Advance every functional engine's drift clock by `ops`: the
     * campaign's "drift age" axis, placing the model at a chosen
     * point on the decay curve before measuring. No effect on any
     * counter; resetForScenario() rewinds it. Must not overlap
     * in-flight inferences.
     */
    void ageArrays(std::uint64_t ops);

    /**
     * Structured resilience summary of the functional model: the
     * fault census, ADC saturation, and the transient-error roll-up.
     * Structural degradation fields (dead tiles, migrated servers)
     * are filled by the chip simulator, not here.
     */
    resilience::ResilienceSummary resilienceSummary() const;

  private:
    friend class Accelerator;
    CompiledModel(const nn::Network &net,
                  const nn::WeightStore &weights,
                  const arch::IsaacConfig &cfg, CompileOptions opts);

    nn::Tensor runDotLayer(std::size_t layerIdx,
                           const nn::Tensor &input) const;

    /** fatal() unless functional engines exist; names the knob. */
    void requireFunctional(const char *what) const;

    /**
     * The engine config one (layer, group) was compiled with,
     * including the per-engine noise-seed decorrelation salt — the
     * one recipe compile and degradeDotLayer() share.
     */
    xbar::EngineConfig engineConfigFor(std::size_t layerIdx,
                                       std::int64_t group) const;

    const nn::Network &net;
    const nn::WeightStore &weights;
    arch::IsaacConfig cfg;
    CompileOptions opts;
    pipeline::PipelinePlan _plan;
    /** The lowered task graph (annotated from _plan). */
    pipeline::ExecutionPlan _ir;
    pipeline::IsaacPerf _perf;
    nn::SigmoidLut lut;
    /** Executes pooling/SPP layers (shared semantics). */
    std::unique_ptr<nn::ReferenceExecutor> poolExec;
    /** engines[layer][windowGroup]; one group for shared kernels. */
    std::vector<std::vector<std::unique_ptr<xbar::BitSerialEngine>>>
        engines;
    /** Roll-up of buffer-ECC / NoC-retry activity. */
    mutable resilience::HealthMonitor health;
    /** Logical image counter keying the injection streams. */
    mutable std::atomic<std::uint64_t> _imageSeq{0};
};

/** Entry point: a configured ISAAC system. */
class Accelerator
{
  public:
    explicit Accelerator(arch::IsaacConfig cfg = {});

    const arch::IsaacConfig &config() const { return cfg; }

    /**
     * Bind a network and its weights to this accelerator.
     * The network and weight store must outlive the CompiledModel.
     */
    CompiledModel compile(const nn::Network &net,
                          const nn::WeightStore &weights,
                          CompileOptions opts = {}) const;

  private:
    arch::IsaacConfig cfg;
};

} // namespace isaac::core

#endif // ISAAC_CORE_ACCELERATOR_H
