#include "baseline/dadiannao_perf.h"

#include <algorithm>

#include "common/bits.h"

namespace isaac::baseline {

double
nfuCyclesForLayer(const nn::LayerDesc &layer,
                  const energy::DaDianNaoModel &model, int chips)
{
    // Waves of Tn x Ti MACs per window, scaled so a fully packed
    // wave sustains the calibrated 288-MAC/cycle tile rate.
    const double wavesPerWindow = static_cast<double>(
        ceilDiv(layer.no, model.nfuTn) *
        ceilDiv(layer.dotLength(), model.nfuTi));
    const double macsPerWave =
        static_cast<double>(model.nfuTn) * model.nfuTi;
    const double waveMacs =
        wavesPerWindow * macsPerWave *
        static_cast<double>(layer.windowsPerImage());
    return waveMacs / (model.macsPerCycle() * chips);
}

DdnPerf
analyzeDaDianNao(const nn::Network &net,
                 const energy::DaDianNaoModel &model, int chips,
                 double activationLocality)
{
    DdnPerf perf;
    perf.chips = chips;

    const double edramCapacity =
        model.edramMB * 1024.0 * 1024.0 * chips;
    perf.fits =
        static_cast<double>(net.totalWeightBytes()) <= edramCapacity;
    if (!perf.fits)
        return perf;

    const double cyclesPerSec = model.clockGHz * 1e9;
    // Aggregate eDRAM weight-streaming bandwidth, bytes per cycle.
    const double edramBytesPerCycle =
        model.edramGBps() * 1e9 / cyclesPerSec * chips;
    const double htBytesPerSec = model.htGBps() * 1e9;

    double totalCycles = 0.0;
    double utilWeightedCycles = 0.0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        DdnLayerPerf lp;
        lp.layerIdx = i;

        if (l.isDotProduct()) {
            lp.computeCycles = nfuCyclesForLayer(l, model, chips);
            lp.weightCycles =
                static_cast<double>(l.weightBytes()) /
                edramBytesPerCycle;
            // Classifier and private-kernel layers: every node holds
            // a slice of the weights, so every node needs the whole
            // input vector.
            double commBytes = 0.0;
            if (l.kind == nn::LayerKind::Classifier ||
                l.privateKernel) {
                commBytes = static_cast<double>(l.dotLength()) *
                    (l.privateKernel ? 1.0 : 1.0) * kDataBytes;
            }
            // Output redistribution for the next layer, split across
            // the nodes' egress links.
            const double outBytes =
                static_cast<double>(l.outputsPerImage()) * kDataBytes;
            commBytes += activationLocality * outBytes / chips;
            lp.commCycles =
                commBytes / htBytesPerSec * cyclesPerSec;
        } else {
            // Pooling runs at eDRAM speed; its redistribution still
            // crosses the network.
            const double outBytes =
                static_cast<double>(l.outputsPerImage()) * kDataBytes;
            lp.commCycles = activationLocality * outBytes / chips /
                htBytesPerSec * cyclesPerSec;
        }

        lp.cycles = std::max({lp.computeCycles, lp.weightCycles,
                              lp.commCycles});
        lp.nfuUtilization =
            lp.cycles > 0 ? lp.computeCycles / lp.cycles : 0.0;
        totalCycles += lp.cycles;
        utilWeightedCycles += lp.computeCycles;
        perf.layers.push_back(lp);
    }

    // Image delivery through the host-facing HyperTransport caps
    // throughput exactly as it does for ISAAC (same interface).
    const auto &first = net.layer(0);
    const double inputBytes = static_cast<double>(first.nx) *
        first.ny * first.ni * kDataBytes;
    const double ioCycles =
        inputBytes / (model.htGBps() * 1e9) * cyclesPerSec;
    totalCycles = std::max(totalCycles, ioCycles);

    perf.cyclesPerImage = totalCycles;
    perf.imagesPerSec = cyclesPerSec / totalCycles;
    perf.avgNfuUtilization =
        totalCycles > 0 ? utilWeightedCycles / totalCycles : 0.0;

    // Energy: NFUs burn power proportional to utilization; eDRAM,
    // bus, and HT are always on while the image is in flight.
    const double seconds = totalCycles / cyclesPerSec;
    const double activePowerW = chips *
        (model.nfuPowerW * perf.avgNfuUtilization +
         model.edramPowerW + model.busPowerW + model.htPowerW);
    perf.powerW = activePowerW;
    perf.energyPerImageJ = activePowerW * seconds;
    return perf;
}

} // namespace isaac::baseline
