/**
 * @file
 * Analytic DaDianNao performance model (the paper's comparison
 * baseline, Sec. VIII-B).
 *
 * DaDianNao executes one layer at a time across all nodes. Per layer
 * the model takes the maximum of:
 *   - compute: MACs / (chips * 4608 MACs/cycle) at 606 MHz;
 *   - weight streaming: private/classifier weights read once per
 *     image from eDRAM at the design bandwidth;
 *   - communication: classifier/private layers broadcast the full
 *     input vector to every node over HyperTransport, and every
 *     layer's outputs are redistributed to the eDRAM banks of the
 *     tiles that own the next layer's inputs ("the outputs are then
 *     routed to appropriate eDRAM banks", Sec. I). The all-to-all
 *     traffic across the HT links is what starves the NFUs in the
 *     classifier layers (Sec. VIII-B).
 */

#ifndef ISAAC_BASELINE_DADIANNAO_PERF_H
#define ISAAC_BASELINE_DADIANNAO_PERF_H

#include <vector>

#include "energy/dadiannao_catalog.h"
#include "nn/network.h"

namespace isaac::baseline {

/** Timing breakdown of one layer. */
struct DdnLayerPerf
{
    std::size_t layerIdx = 0;
    double computeCycles = 0.0;
    double weightCycles = 0.0;
    double commCycles = 0.0;
    double cycles = 0.0;      ///< max of the above
    double nfuUtilization = 0.0;
};

/** End-to-end DaDianNao execution of one network. */
struct DdnPerf
{
    bool fits = true;     ///< Weights fit in chips x 36 MB of eDRAM.
    int chips = 1;
    double cyclesPerImage = 0.0;
    double imagesPerSec = 0.0;
    double powerW = 0.0;
    double energyPerImageJ = 0.0;
    double avgNfuUtilization = 0.0;
    std::vector<DdnLayerPerf> layers;
};

/**
 * Evaluate a network on `chips` DaDianNao nodes.
 * @param activationLocality fraction of each layer's output bytes
 *        that must cross HyperTransport when redistributed for the
 *        next layer (1.0 = all outputs leave the producing node).
 */
DdnPerf analyzeDaDianNao(const nn::Network &net,
                         const energy::DaDianNaoModel &model,
                         int chips,
                         double activationLocality = 1.0);

/**
 * NFU cycles to compute one layer across all nodes, including the
 * Tn x Ti dataflow granularity: a window needs
 * ceil(No/Tn) * ceil(dotLength/Ti) NFU waves, so layers with few
 * input channels (VGG's 3-channel first layer) or few outputs leave
 * multiplier lanes idle.
 */
double nfuCyclesForLayer(const nn::LayerDesc &layer,
                         const energy::DaDianNaoModel &model,
                         int chips);

} // namespace isaac::baseline

#endif // ISAAC_BASELINE_DADIANNAO_PERF_H
